// Package vc assigns virtual channels (VCs) to routed flows so that each
// VC layer's channel dependency graph (CDG) is acyclic, which — per Dally
// and Seitz — suffices for deadlock-free wormhole routing when packets
// stay within their assigned layer.
//
// The assignment follows the paper's adaptation of the DFSSSP idea
// (Domke et al.): shortest paths are partitioned into layers; paths that
// would close a cycle in the current layer's CDG are deferred to the
// next layer. Randomized path orders are tried and the assignment with
// the fewest layers kept; a final pass balances layers by path-length
// weighted occupancy without breaking acyclicity.
package vc

import (
	"fmt"
	"math/rand"

	"netsmith/internal/route"
)

// Assignment maps every routed flow to a VC layer.
type Assignment struct {
	NumVCs  int
	LayerOf [][]int // [src][dst] -> layer; -1 on the diagonal
}

// Layer returns the VC layer of flow (s, d).
func (a *Assignment) Layer(s, d int) int { return a.LayerOf[s][d] }

// cdg is a channel dependency graph: nodes are directed links (encoded
// as from*n+to), edges connect consecutive links of some path.
type cdg struct {
	n    int
	succ map[int]map[int]int // edge -> edge -> refcount
}

func newCDG(n int) *cdg { return &cdg{n: n, succ: make(map[int]map[int]int)} }

func (g *cdg) linkID(a, b int) int { return a*g.n + b }

// pathEdges returns the CDG edges induced by a path.
func (g *cdg) pathEdges(p route.Path) [][2]int {
	var out [][2]int
	for i := 0; i+2 < len(p); i++ {
		out = append(out, [2]int{g.linkID(p[i], p[i+1]), g.linkID(p[i+1], p[i+2])})
	}
	return out
}

func (g *cdg) add(p route.Path) {
	for _, e := range g.pathEdges(p) {
		m := g.succ[e[0]]
		if m == nil {
			m = make(map[int]int)
			g.succ[e[0]] = m
		}
		m[e[1]]++
	}
}

func (g *cdg) remove(p route.Path) {
	for _, e := range g.pathEdges(p) {
		if m := g.succ[e[0]]; m != nil {
			m[e[1]]--
			if m[e[1]] <= 0 {
				delete(m, e[1])
			}
			if len(m) == 0 {
				delete(g.succ, e[0])
			}
		}
	}
}

// acyclic checks the CDG for cycles with an iterative three-color DFS.
func (g *cdg) acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(g.succ))
	type frame struct {
		node int
		iter []int
	}
	for start := range g.succ {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start, iter: keys(g.succ[start])}}
		color[start] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if len(top.iter) == 0 {
				color[top.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			next := top.iter[len(top.iter)-1]
			top.iter = top.iter[:len(top.iter)-1]
			switch color[next] {
			case gray:
				return false
			case white:
				color[next] = gray
				stack = append(stack, frame{node: next, iter: keys(g.succ[next])})
			}
		}
	}
	return true
}

func keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// wouldStayAcyclic reports whether adding path p keeps the CDG acyclic.
func (g *cdg) wouldStayAcyclic(p route.Path) bool {
	g.add(p)
	ok := g.acyclic()
	g.remove(p)
	return ok
}

// Options controls VC assignment.
type Options struct {
	Seed   int64
	Tries  int // randomized orders tried (default 8)
	MaxVCs int // error if more layers are needed (0 = unlimited)
}

// Assign partitions the routing's paths into acyclic-CDG layers.
func Assign(r *route.Routing, opts Options) (*Assignment, error) {
	if opts.Tries == 0 {
		opts.Tries = 8
	}
	n := r.N
	type flow struct{ s, d int }
	var flows []flow
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d && r.Table[s][d] != nil {
				flows = append(flows, flow{s, d})
			}
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var best *Assignment
	for try := 0; try < opts.Tries; try++ {
		order := rng.Perm(len(flows))
		layerOf := make([][]int, n)
		for s := range layerOf {
			layerOf[s] = make([]int, n)
			for d := range layerOf[s] {
				layerOf[s][d] = -1
			}
		}
		pending := make([]int, len(order))
		copy(pending, order)
		layers := 0
		for len(pending) > 0 {
			g := newCDG(n)
			var deferred []int
			for _, fi := range pending {
				f := flows[fi]
				p := r.Table[f.s][f.d]
				if g.wouldStayAcyclic(p) {
					g.add(p)
					layerOf[f.s][f.d] = layers
				} else {
					deferred = append(deferred, fi)
				}
			}
			if len(deferred) == len(pending) {
				return nil, fmt.Errorf("vc: no progress assigning layer %d", layers)
			}
			pending = deferred
			layers++
		}
		if best == nil || layers < best.NumVCs {
			best = &Assignment{NumVCs: layers, LayerOf: layerOf}
		}
	}
	if opts.MaxVCs > 0 && best.NumVCs > opts.MaxVCs {
		return nil, fmt.Errorf("vc: %d layers needed, max %d", best.NumVCs, opts.MaxVCs)
	}
	balance(r, best)
	return best, nil
}

// balance evens out path-length weighted VC occupancy: paths are moved
// from heavier to lighter layers whenever the move preserves acyclicity.
func balance(r *route.Routing, a *Assignment) {
	if a.NumVCs < 2 {
		return
	}
	n := r.N
	graphs := make([]*cdg, a.NumVCs)
	weight := make([]int, a.NumVCs)
	for v := range graphs {
		graphs[v] = newCDG(n)
	}
	type flow struct{ s, d int }
	var flows []flow
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d || r.Table[s][d] == nil {
				continue
			}
			v := a.LayerOf[s][d]
			graphs[v].add(r.Table[s][d])
			weight[v] += r.Table[s][d].Hops()
			flows = append(flows, flow{s, d})
		}
	}
	for pass := 0; pass < 3; pass++ {
		moved := false
		for _, f := range flows {
			p := r.Table[f.s][f.d]
			from := a.LayerOf[f.s][f.d]
			for to := 0; to < a.NumVCs; to++ {
				if to == from || weight[to]+p.Hops() >= weight[from] {
					continue
				}
				if graphs[to].wouldStayAcyclic(p) {
					graphs[from].remove(p)
					graphs[to].add(p)
					weight[from] -= p.Hops()
					weight[to] += p.Hops()
					a.LayerOf[f.s][f.d] = to
					moved = true
					break
				}
			}
		}
		if !moved {
			break
		}
	}
}

// Verify confirms the assignment is complete and every layer's CDG is
// acyclic. It is the deadlock-freedom check used by tests and the
// simulator's setup path.
func (a *Assignment) Verify(r *route.Routing) error {
	n := r.N
	graphs := make([]*cdg, a.NumVCs)
	for v := range graphs {
		graphs[v] = newCDG(n)
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d || r.Table[s][d] == nil {
				continue
			}
			v := a.LayerOf[s][d]
			if v < 0 || v >= a.NumVCs {
				return fmt.Errorf("vc: flow (%d,%d) has invalid layer %d", s, d, v)
			}
			graphs[v].add(r.Table[s][d])
		}
	}
	for v, g := range graphs {
		if !g.acyclic() {
			return fmt.Errorf("vc: layer %d CDG has a cycle", v)
		}
	}
	return nil
}

// Occupancy returns the path-length weighted occupancy per layer.
func (a *Assignment) Occupancy(r *route.Routing) []int {
	w := make([]int, a.NumVCs)
	for s := 0; s < r.N; s++ {
		for d := 0; d < r.N; d++ {
			if s == d || r.Table[s][d] == nil {
				continue
			}
			w[a.LayerOf[s][d]] += r.Table[s][d].Hops()
		}
	}
	return w
}
