package netsmith

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netsmith/internal/serve"
	"netsmith/internal/store"
)

func clientTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	srv, err := serve.New(serve.Config{Store: st, Workers: 2})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs
}

var clientMatrixSeed = int64(31)

var clientMatrixJob = MatrixJob{
	Grid:     "3x3",
	Patterns: []string{"uniform", "tornado"},
	Rates:    []float64{0.05, 0.12},
	Fidelity: "smoke",
	Seed:     &clientMatrixSeed,
}

// The same job through the local and remote paths must yield the same
// matrix, byte for byte.
func TestClientLocalRemoteByteIdentical(t *testing.T) {
	hs := clientTestServer(t)
	remote, err := NewClient(WithServer(hs.URL), WithPollInterval(10*time.Millisecond))
	if err != nil {
		t.Fatalf("NewClient(remote): %v", err)
	}
	local, err := NewClient(WithStoreDir(t.TempDir()))
	if err != nil {
		t.Fatalf("NewClient(local): %v", err)
	}

	ctx := context.Background()
	rOut, rHit, err := remote.Matrix(ctx, clientMatrixJob)
	if err != nil {
		t.Fatalf("remote Matrix: %v", err)
	}
	lOut, lHit, err := local.Matrix(ctx, clientMatrixJob)
	if err != nil {
		t.Fatalf("local Matrix: %v", err)
	}
	if rHit || lHit {
		t.Fatalf("cold runs reported cache hits: remote=%v local=%v", rHit, lHit)
	}
	rb, _ := json.Marshal(rOut.Matrix)
	lb, _ := json.Marshal(lOut.Matrix)
	if !bytes.Equal(rb, lb) {
		t.Fatalf("local and remote matrices differ:\nremote: %s\nlocal:  %s", rb, lb)
	}

	// A repeat against the same server is answered from the store.
	rOut2, rHit2, err := remote.Matrix(ctx, clientMatrixJob)
	if err != nil {
		t.Fatalf("remote Matrix (warm): %v", err)
	}
	if !rHit2 {
		t.Fatalf("warm remote run not a cache hit (stats: %+v)", rOut2.Stats)
	}
	rb2, _ := json.Marshal(rOut2.Matrix)
	if !bytes.Equal(rb2, rb) {
		t.Fatalf("warm remote matrix differs from cold run")
	}
}

func TestClientSynthLocalRemoteAgree(t *testing.T) {
	hs := clientTestServer(t)
	remote, err := NewClient(WithServer(hs.URL), WithPollInterval(10*time.Millisecond))
	if err != nil {
		t.Fatalf("NewClient(remote): %v", err)
	}
	local, err := NewClient(WithStoreDir(t.TempDir()))
	if err != nil {
		t.Fatalf("NewClient(local): %v", err)
	}
	job := SynthJob{Grid: "4x4", Seed: 7, Iterations: 50}

	ctx := context.Background()
	rOut, _, err := remote.Synth(ctx, job)
	if err != nil {
		t.Fatalf("remote Synth: %v", err)
	}
	lOut, lHit, err := local.Synth(ctx, job)
	if err != nil {
		t.Fatalf("local Synth: %v", err)
	}
	if lHit {
		t.Fatal("cold local synth reported a cache hit")
	}
	rb, _ := json.Marshal(rOut)
	lb, _ := json.Marshal(lOut)
	if !bytes.Equal(rb, lb) {
		t.Fatalf("local and remote synth results differ:\nremote: %s\nlocal:  %s", rb, lb)
	}

	// Warm local store: same client, same job, now a hit.
	_, lHit2, err := local.Synth(ctx, job)
	if err != nil {
		t.Fatalf("local Synth (warm): %v", err)
	}
	if !lHit2 {
		t.Fatal("warm local synth not a cache hit")
	}
}

func TestClientRemoteErrorsSurfaceCode(t *testing.T) {
	hs := clientTestServer(t)
	c, err := NewClient(WithServer(hs.URL), WithPollInterval(10*time.Millisecond))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	_, _, err = c.Matrix(context.Background(), MatrixJob{Grid: "not-a-grid"})
	if err == nil {
		t.Fatal("invalid grid accepted")
	}
	if !strings.Contains(err.Error(), "bad_request") {
		t.Fatalf("error does not carry the API code: %v", err)
	}
}

func TestClientProgressCallback(t *testing.T) {
	var last, total int
	c, err := NewClient(WithProgress(func(d, tot int) { last, total = d, tot }))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	out, _, err := c.Matrix(context.Background(), clientMatrixJob)
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	cells := out.Stats.Cells
	if cells == 0 || last != cells || total != cells {
		t.Fatalf("progress ended at %d/%d, want %d/%d", last, total, cells, cells)
	}
}

func TestClientOptionValidation(t *testing.T) {
	if _, err := NewClient(WithServer("")); err == nil {
		t.Fatal("empty server URL accepted")
	}
	if _, err := NewClient(WithPollInterval(0)); err == nil {
		t.Fatal("zero poll interval accepted")
	}
}
