// Command netsim simulates synthetic traffic on a named baseline or a
// freshly synthesized NetSmith topology and prints the latency-vs-
// injection curve with the derived saturation throughput.
//
// Examples:
//
//	netsim -topology Kite-Medium -pattern uniform
//	netsim -topology NS-LatOp -class large -pattern memory
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/synth"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
)

func main() {
	name := flag.String("topology", "Kite-Medium", "baseline name (see -list) or NS-LatOp / NS-SCOp")
	className := flag.String("class", "medium", "link-length class for NS synthesis")
	patternName := flag.String("pattern", "uniform", "traffic: uniform, memory, shuffle")
	rows := flag.Int("rows", 4, "grid rows")
	cols := flag.Int("cols", 5, "grid columns")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list available baselines and exit")
	flag.Parse()

	g := layout.NewGrid(*rows, *cols)
	if *list {
		for _, n := range expert.Names(g) {
			fmt.Println(n)
		}
		return
	}

	var t *topo.Topology
	var err error
	if strings.HasPrefix(*name, "NS-") {
		class, perr := layout.ParseClass(*className)
		if perr != nil {
			fatal(perr)
		}
		obj := synth.LatOp
		if strings.Contains(*name, "SCOp") {
			obj = synth.SCOp
		}
		var res *synth.Result
		res, err = synth.Generate(synth.Config{Grid: g, Class: class, Objective: obj, Seed: *seed})
		if err == nil {
			t = res.Topology
		}
	} else {
		t, err = expert.Get(*name, g)
	}
	if err != nil {
		fatal(err)
	}

	var pattern traffic.Pattern
	switch *patternName {
	case "uniform":
		pattern = traffic.Uniform{N: t.N()}
	case "memory":
		pattern = traffic.NewMemory(g.CoreRouters(), g.MemoryControllerRouters())
	case "shuffle":
		pattern = traffic.Shuffle{N: t.N()}
	default:
		fatal(fmt.Errorf("unknown pattern %q", *patternName))
	}

	kind := sim.UseNDBT
	if strings.HasPrefix(t.Name, "NS-") {
		kind = sim.UseMCLB
	}
	setup, err := sim.Prepare(t, kind, *seed)
	if err != nil {
		fatal(err)
	}
	sr, err := setup.Curve(pattern, nil, false, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (%s class) under %s traffic:\n", t.Name, t.Class, pattern.Name())
	fmt.Printf("%12s %14s %18s %s\n", "offered", "latency(ns)", "accepted(pkt/n/ns)", "")
	for _, p := range sr.Points {
		mark := ""
		if p.Saturated {
			mark = "  [saturated]"
		}
		fmt.Printf("%12.3f %14.2f %18.3f%s\n", p.OfferedRate, p.AvgLatencyNs, p.AcceptedPerNs, mark)
	}
	fmt.Printf("zero-load latency %.2f ns, saturation throughput %.3f packets/node/ns\n",
		sr.ZeroLoadLatencyNs, sr.SaturationPerNs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netsim:", err)
	os.Exit(1)
}
