// Command netbench regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports; absolute
// numbers differ from the authors' gem5 testbed but the comparative
// shapes hold (see EXPERIMENTS.md).
//
// Usage:
//
//	netbench -exp table2            # one experiment
//	netbench -exp all -full         # everything at full fidelity
//
// Experiments: fig1, table2, fig5, fig6, fig7, fig8, fig9, fig10,
// fig11, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"netsmith/internal/exp"
)

func main() {
	expName := flag.String("exp", "all", "experiment to run (fig1, table2, fig5..fig11, all)")
	full := flag.Bool("full", false, "full fidelity (slower, tighter numbers)")
	csvDir := flag.String("csv", "", "also write <dir>/<experiment>.csv data files")
	flag.Parse()

	s := exp.NewSuite(!*full)
	w := os.Stdout
	csvOut := func(name string, write func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return write(f)
	}

	runners := []struct {
		name string
		run  func() error
	}{
		{"table2", func() error {
			rows, err := s.Table2()
			if err != nil {
				return err
			}
			exp.PrintTable2(w, rows)
			return csvOut("table2", func(f io.Writer) error { return exp.Table2CSV(f, rows) })
		}},
		{"fig1", func() error {
			pts, err := s.Fig1()
			if err != nil {
				return err
			}
			exp.PrintFig1(w, pts)
			return csvOut("fig1", func(f io.Writer) error { return exp.Fig1CSV(f, pts) })
		}},
		{"fig5", func() error {
			traces, err := s.Fig5()
			if err != nil {
				return err
			}
			exp.PrintFig5(w, traces)
			return csvOut("fig5", func(f io.Writer) error { return exp.Fig5CSV(f, traces) })
		}},
		{"fig6", func() error {
			curves, err := s.Fig6()
			if err != nil {
				return err
			}
			exp.PrintFig6(w, curves)
			return csvOut("fig6", func(f io.Writer) error { return exp.Fig6CSV(f, curves) })
		}},
		{"fig7", func() error {
			rows, err := s.Fig7()
			if err != nil {
				return err
			}
			exp.PrintFig7(w, rows)
			return csvOut("fig7", func(f io.Writer) error { return exp.Fig7CSV(f, rows) })
		}},
		{"fig8", func() error {
			rows, err := s.Fig8()
			if err != nil {
				return err
			}
			exp.PrintFig8(w, rows)
			return csvOut("fig8", func(f io.Writer) error { return exp.Fig8CSV(f, rows) })
		}},
		{"fig9", func() error {
			rows, err := s.Fig9()
			if err != nil {
				return err
			}
			exp.PrintFig9(w, rows)
			return csvOut("fig9", func(f io.Writer) error { return exp.Fig9CSV(f, rows) })
		}},
		{"fig10", func() error {
			curves, err := s.Fig10()
			if err != nil {
				return err
			}
			exp.PrintFig10(w, curves)
			return csvOut("fig10", func(f io.Writer) error { return exp.Fig10CSV(f, curves) })
		}},
		{"fig11", func() error {
			curves, err := s.Fig11()
			if err != nil {
				return err
			}
			exp.PrintFig11(w, curves)
			return csvOut("fig11", func(f io.Writer) error { return exp.Fig11CSV(f, curves) })
		}},
	}

	matched := false
	for _, r := range runners {
		if *expName != "all" && *expName != r.name {
			continue
		}
		matched = true
		start := time.Now()
		if err := r.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "[%s completed in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expName)
		os.Exit(2)
	}
}
