// Command netbench regenerates the paper's tables and figures, and runs
// scenario matrices over the pluggable workload registry. Each
// experiment prints the same rows/series the paper reports; absolute
// numbers differ from the authors' gem5 testbed but the comparative
// shapes hold (see EXPERIMENTS.md).
//
// Usage:
//
//	netbench -exp table2            # one experiment
//	netbench -exp all -full         # everything at full fidelity
//	netbench -matrix                # {pattern x rate x topology} matrix
//	netbench -matrix -grid 4x4 -topos mesh -patterns uniform,tornado \
//	    -rates 0.02,0.10 -smoke     # CI-scale smoke
//	netbench -matrix -energy        # measured-energy columns per cell
//	netbench -matrix -topos ns -energy-weight 2  # energy-aware synthesis
//
// Experiments: fig1, table2, fig5, fig6, fig7, fig8, fig9, fig10,
// fig11, all. Matrix patterns are the traffic-registry names (see
// -patterns default for the full set); parameterized forms use
// "name:key=val:key=val", e.g. hotspot:weight=0.7:hot=0+19. Matrix
// output (stdout summary, -csv dir matrix.csv/matrix.json) is
// bit-identical across reruns and GOMAXPROCS settings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"netsmith/internal/exp"
	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/synth"
	"netsmith/internal/traffic"
)

// defaultMatrixPatterns lists every registry pattern constructible
// without required parameters ("trace" needs -trace).
const defaultMatrixPatterns = "uniform,shuffle,memory,transpose,bitcomp,bitrev,tornado,hotspot,bursty"

func main() {
	expName := flag.String("exp", "all", "experiment to run (fig1, table2, fig5..fig11, all)")
	full := flag.Bool("full", false, "full fidelity (slower, tighter numbers)")
	csvDir := flag.String("csv", "", "also write <dir>/<experiment>.csv data files")
	matrix := flag.Bool("matrix", false, "run the scenario matrix instead of figure experiments")
	grid := flag.String("grid", "4x5", "matrix: interposer grid RxC")
	class := flag.String("class", "medium", "matrix: link-length class of the synthesized topology")
	topos := flag.String("topos", "mesh,ns", "matrix: comma-separated topologies (mesh, ns)")
	patterns := flag.String("patterns", defaultMatrixPatterns, "matrix: comma-separated registry patterns (name or name:key=val:...)")
	rates := flag.String("rates", "0.02,0.08,0.14", "matrix: comma-separated offered rates (packets/node/cycle)")
	traceFile := flag.String("trace", "", "matrix: trace file; appends the trace-replay pattern")
	smoke := flag.Bool("smoke", false, "matrix: minimal cycle budgets (CI smoke)")
	seed := flag.Int64("seed", 42, "matrix: base seed")
	energy := flag.Bool("energy", false, "matrix: collect measured energy (activity counters; fills the avg_power_mw / energy_per_flit_pj columns)")
	energyWeight := flag.Float64("energy-weight", 0, "matrix: weight of the energy-proxy term in the ns topology's synthesis objective")
	flag.Parse()

	if *matrix {
		if err := runMatrix(*grid, *class, *topos, *patterns, *rates, *traceFile, *csvDir, *smoke, *full, *energy, *energyWeight, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "matrix: %v\n", err)
			os.Exit(1)
		}
		return
	}

	s := exp.NewSuite(!*full)
	w := os.Stdout
	csvOut := func(name string, write func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return write(f)
	}

	runners := []struct {
		name string
		run  func() error
	}{
		{"table2", func() error {
			rows, err := s.Table2()
			if err != nil {
				return err
			}
			exp.PrintTable2(w, rows)
			return csvOut("table2", func(f io.Writer) error { return exp.Table2CSV(f, rows) })
		}},
		{"fig1", func() error {
			pts, err := s.Fig1()
			if err != nil {
				return err
			}
			exp.PrintFig1(w, pts)
			return csvOut("fig1", func(f io.Writer) error { return exp.Fig1CSV(f, pts) })
		}},
		{"fig5", func() error {
			traces, err := s.Fig5()
			if err != nil {
				return err
			}
			exp.PrintFig5(w, traces)
			return csvOut("fig5", func(f io.Writer) error { return exp.Fig5CSV(f, traces) })
		}},
		{"fig6", func() error {
			curves, err := s.Fig6()
			if err != nil {
				return err
			}
			exp.PrintFig6(w, curves)
			return csvOut("fig6", func(f io.Writer) error { return exp.Fig6CSV(f, curves) })
		}},
		{"fig7", func() error {
			rows, err := s.Fig7()
			if err != nil {
				return err
			}
			exp.PrintFig7(w, rows)
			return csvOut("fig7", func(f io.Writer) error { return exp.Fig7CSV(f, rows) })
		}},
		{"fig8", func() error {
			rows, err := s.Fig8()
			if err != nil {
				return err
			}
			exp.PrintFig8(w, rows)
			return csvOut("fig8", func(f io.Writer) error { return exp.Fig8CSV(f, rows) })
		}},
		{"fig9", func() error {
			rows, err := s.Fig9()
			if err != nil {
				return err
			}
			exp.PrintFig9(w, rows)
			return csvOut("fig9", func(f io.Writer) error { return exp.Fig9CSV(f, rows) })
		}},
		{"fig10", func() error {
			curves, err := s.Fig10()
			if err != nil {
				return err
			}
			exp.PrintFig10(w, curves)
			return csvOut("fig10", func(f io.Writer) error { return exp.Fig10CSV(f, curves) })
		}},
		{"fig11", func() error {
			curves, err := s.Fig11()
			if err != nil {
				return err
			}
			exp.PrintFig11(w, curves)
			return csvOut("fig11", func(f io.Writer) error { return exp.Fig11CSV(f, curves) })
		}},
	}

	matched := false
	for _, r := range runners {
		if *expName != "all" && *expName != r.name {
			continue
		}
		matched = true
		start := time.Now()
		if err := r.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "[%s completed in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expName)
		os.Exit(2)
	}
}

// parseGrid parses "RxC".
func parseGrid(s string) (*layout.Grid, error) {
	r, c, ok := strings.Cut(s, "x")
	if ok {
		rows, err1 := strconv.Atoi(r)
		cols, err2 := strconv.Atoi(c)
		if err1 == nil && err2 == nil && rows > 0 && cols > 0 {
			return layout.NewGrid(rows, cols), nil
		}
	}
	return nil, fmt.Errorf("bad grid %q (want RxC, e.g. 4x5)", s)
}

// matrixSetups prepares the requested topologies: the mesh baseline with
// expert NDBT routing and/or a latency-optimized NetSmith topology
// (fast-budget synthesis unless -full) with MCLB routing.
func matrixSetups(topos string, g *layout.Grid, cl layout.Class, full bool, energyWeight float64, seed int64) ([]*sim.Setup, error) {
	var setups []*sim.Setup
	for _, name := range strings.Split(topos, ",") {
		switch strings.TrimSpace(name) {
		case "mesh":
			st, err := sim.Prepare(expert.Mesh(g), sim.UseNDBT, seed)
			if err != nil {
				return nil, err
			}
			setups = append(setups, st)
		case "ns":
			iters := 20000
			if full {
				iters = 80000
			}
			res, err := synth.Generate(synth.Config{
				Grid: g, Class: cl, Objective: synth.LatOp,
				EnergyWeight: energyWeight,
				Seed:         seed, Iterations: iters, Restarts: 4,
			})
			if err != nil {
				return nil, err
			}
			st, err := sim.Prepare(res.Topology, sim.UseMCLB, seed)
			if err != nil {
				return nil, err
			}
			setups = append(setups, st)
		default:
			return nil, fmt.Errorf("unknown topology %q (want mesh or ns)", name)
		}
	}
	return setups, nil
}

func runMatrix(grid, class, topos, patterns, rates, traceFile, csvDir string, smoke, full, energy bool, energyWeight float64, seed int64) error {
	g, err := parseGrid(grid)
	if err != nil {
		return err
	}
	cl, err := layout.ParseClass(class)
	if err != nil {
		return err
	}
	setups, err := matrixSetups(topos, g, cl, full, energyWeight, seed)
	if err != nil {
		return err
	}

	env := traffic.GridEnv(g)
	reg := traffic.Default()
	var factories []sim.PatternFactory
	for _, arg := range strings.Split(patterns, ",") {
		name, params, err := traffic.ParsePatternArg(strings.TrimSpace(arg))
		if err != nil {
			return err
		}
		// Fail fast on bad names/params before burning simulation time.
		if _, err := reg.Build(name, env, params); err != nil {
			return err
		}
		factories = append(factories, sim.RegistryFactory(reg, name, env, params))
	}
	if traceFile != "" {
		// Parse the trace once; each cell replays the in-memory records
		// (the registry's "trace" entry would re-read the file per cell).
		tf, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		recs, err := traffic.ParseTrace(tf)
		tf.Close()
		if err != nil {
			return err
		}
		tag := strings.TrimSuffix(filepath.Base(traceFile), ".csv")
		if _, err := traffic.NewReplay(tag, env.N, recs, true); err != nil {
			return err
		}
		factories = append(factories, sim.PatternFactory{
			Name: "trace/" + tag,
			New: func() (traffic.Pattern, error) {
				return traffic.NewReplay(tag, env.N, recs, true)
			},
		})
	}

	var rateGrid []float64
	for _, f := range strings.Split(rates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad rate %q", f)
		}
		rateGrid = append(rateGrid, v)
	}

	var base sim.Config
	switch {
	case smoke:
		base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 300, 800, 1600
	case !full:
		base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 1500, 4000, 6000
	}
	base.CollectEnergy = energy

	start := time.Now()
	res, err := sim.RunMatrix(sim.MatrixConfig{
		Setups: setups, Patterns: factories, Rates: rateGrid,
		Base: base, Seed: seed,
	})
	if err != nil {
		return err
	}
	exp.PrintMatrix(os.Stdout, res)
	fmt.Printf("[matrix: %d topologies x %d patterns x %d rates in %v]\n",
		len(setups), len(factories), len(rateGrid), time.Since(start).Round(time.Millisecond))

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		cf, err := os.Create(filepath.Join(csvDir, "matrix.csv"))
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := exp.MatrixCSV(cf, res); err != nil {
			return err
		}
		jf, err := os.Create(filepath.Join(csvDir, "matrix.json"))
		if err != nil {
			return err
		}
		defer jf.Close()
		if err := exp.MatrixJSON(jf, res); err != nil {
			return err
		}
	}
	return nil
}
