// Command netbench regenerates the paper's tables and figures, and runs
// scenario matrices over the pluggable workload registry. Each
// experiment prints the same rows/series the paper reports; absolute
// numbers differ from the authors' gem5 testbed but the comparative
// shapes hold (see EXPERIMENTS.md).
//
// Usage:
//
//	netbench -exp table2            # one experiment
//	netbench -exp all -full         # everything at full fidelity
//	netbench -matrix                # {pattern x rate x topology} matrix
//	netbench -matrix -grid 4x4 -topos mesh -patterns uniform,tornado \
//	    -rates 0.02,0.10 -smoke     # CI-scale smoke
//	netbench -matrix -energy        # measured-energy columns per cell
//	netbench -matrix -topos ns -energy-weight 2  # energy-aware synthesis
//	netbench -matrix -faults klinks:k=2:at=400   # fault axis (plus the
//	    fault-free baseline); robustness columns in the summary and CSV
//	netbench -matrix -topos ns -robust-weight 50 # fragility-priced synthesis
//	netbench -matrix -store .netsmith-store     # cached + resumable
//	netbench -matrix -store S -shard 0/2        # this machine's half
//	netbench -matrix -unbatched                 # fresh engine per cell
//	netbench -pareto                            # energy-weight Pareto frontier
//	netbench -pareto -energy-weights 0,1,2 -robust-weights 0,50 \
//	    -store S -csv out                       # cached sweep + frontier.csv/.json
//	netbench -exp fig6 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// Experiments: fig1, table2, fig5, fig6, fig7, fig8, fig9, fig10,
// fig11, all. Matrix patterns are the traffic-registry names (see
// -patterns default for the full set); parameterized forms use
// "name:key=val:key=val", e.g. hotspot:weight=0.7:hot=0+19. Matrix
// output (stdout summary, -csv dir matrix.csv/matrix.json) is
// bit-identical across reruns and GOMAXPROCS settings.
//
// With -store, every matrix cell is content-addressed in the given
// directory: a killed run resumes where it stopped, and a re-run is
// served from cache. -shard i/n restricts simulation to a
// deterministic 1/n of the cells (requires -store); once all n shards
// have run against a shared store, the last one (or any re-run)
// assembles CSV/JSON byte-identical to an unsharded run.
//
// -pareto sweeps an (energy, robust) synthesis-weight grid instead of a
// scenario matrix: one topology synthesized per grid point, measured
// under uniform traffic, dominated points pruned, the surviving
// frontier printed with fleet-level energy accounting (and written to
// -csv dir frontier.csv/frontier.json, byte-identical across reruns).
// -store caches synthesis, measurement and the assembled frontier;
// -shard i/n computes a deterministic 1/n of the sweep points.
package main

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"netsmith/internal/exp"
	"netsmith/internal/expert"
	"netsmith/internal/fault"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/store"
	"netsmith/internal/synth"
	"netsmith/internal/traffic"
)

// defaultMatrixPatterns lists every registry pattern constructible
// without required parameters ("trace" needs -trace).
const defaultMatrixPatterns = "uniform,shuffle,memory,transpose,bitcomp,bitrev,tornado,hotspot,bursty"

func main() {
	os.Exit(realMain())
}

// realMain holds the actual entry point so profile-writing defers run
// before the process exits (os.Exit skips defers).
func realMain() int {
	expName := flag.String("exp", "all", "experiment to run (fig1, table2, fig5..fig11, all)")
	full := flag.Bool("full", false, "full fidelity (slower, tighter numbers)")
	csvDir := flag.String("csv", "", "also write <dir>/<experiment>.csv data files")
	matrix := flag.Bool("matrix", false, "run the scenario matrix instead of figure experiments")
	pareto := flag.Bool("pareto", false, "run a Pareto-frontier sweep over the synthesis weight grid instead of figure experiments")
	energyWeights := flag.String("energy-weights", "", "pareto: comma-separated energy-weight grid (default 0,0.5,1,2)")
	robustWeights := flag.String("robust-weights", "", "pareto: comma-separated robust-weight grid (default 0)")
	grid := flag.String("grid", "4x5", "matrix: interposer grid RxC")
	class := flag.String("class", "medium", "matrix: link-length class of the synthesized topology")
	topos := flag.String("topos", "mesh,ns", "matrix: comma-separated topologies (mesh, ns)")
	patterns := flag.String("patterns", defaultMatrixPatterns, "matrix: comma-separated registry patterns (name or name:key=val:...)")
	rates := flag.String("rates", "0.02,0.08,0.14", "matrix: comma-separated offered rates (packets/node/cycle)")
	traceFile := flag.String("trace", "", "matrix: trace file; appends the trace-replay pattern")
	smoke := flag.Bool("smoke", false, "matrix: minimal cycle budgets (CI smoke)")
	seed := flag.Int64("seed", 42, "matrix: base seed")
	energy := flag.Bool("energy", false, "matrix: collect measured energy (activity counters; fills the avg_power_mw / energy_per_flit_pj columns)")
	energyWeight := flag.Float64("energy-weight", 0, "matrix: weight of the energy-proxy term in the ns topology's synthesis objective")
	robustWeight := flag.Float64("robust-weight", 0, "matrix: weight of the fragility term in the ns topology's synthesis objective (prices single-link-failure exposure)")
	faults := flag.String("faults", "", "matrix: comma-separated fault schedules added as a matrix axis (name or name:key=val:..., e.g. klinks:k=2:at=400; a fault-free cell set always runs)")
	storeDir := flag.String("store", "", "matrix: content-addressed result store directory (cells cached; runs resume)")
	shardArg := flag.String("shard", "", "matrix: compute only shard i/n of the cells (e.g. 0/2; requires -store)")
	unbatched := flag.Bool("unbatched", false, "matrix: build a fresh engine per cell instead of reusing per-worker engines (bit-identical output; for A/B verification)")
	population := flag.Int("population", 0, "matrix: ns synthesis population size (0 = restart annealer; >= 2 enables population mode)")
	generations := flag.Int("generations", 0, "matrix: ns synthesis evolution rounds (default 8 when -population is set)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *matrix {
		if err := runMatrix(*grid, *class, *topos, *patterns, *rates, *traceFile, *faults, *csvDir, *storeDir, *shardArg, *smoke, *full, *energy, *unbatched, *energyWeight, *robustWeight, *seed, *population, *generations); err != nil {
			fmt.Fprintf(os.Stderr, "matrix: %v\n", err)
			return 1
		}
		return 0
	}
	if *pareto {
		if err := runPareto(*grid, *class, *energyWeights, *robustWeights, *rates, *csvDir, *storeDir, *shardArg, *smoke, *full, *seed, *population, *generations); err != nil {
			fmt.Fprintf(os.Stderr, "pareto: %v\n", err)
			return 1
		}
		return 0
	}

	s := exp.NewSuite(!*full)
	w := os.Stdout
	csvOut := func(name string, write func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return write(f)
	}

	runners := []struct {
		name string
		run  func() error
	}{
		{"table2", func() error {
			rows, err := s.Table2()
			if err != nil {
				return err
			}
			exp.PrintTable2(w, rows)
			return csvOut("table2", func(f io.Writer) error { return exp.Table2CSV(f, rows) })
		}},
		{"fig1", func() error {
			pts, err := s.Fig1()
			if err != nil {
				return err
			}
			exp.PrintFig1(w, pts)
			return csvOut("fig1", func(f io.Writer) error { return exp.Fig1CSV(f, pts) })
		}},
		{"fig5", func() error {
			traces, err := s.Fig5()
			if err != nil {
				return err
			}
			exp.PrintFig5(w, traces)
			return csvOut("fig5", func(f io.Writer) error { return exp.Fig5CSV(f, traces) })
		}},
		{"fig6", func() error {
			curves, err := s.Fig6()
			if err != nil {
				return err
			}
			exp.PrintFig6(w, curves)
			return csvOut("fig6", func(f io.Writer) error { return exp.Fig6CSV(f, curves) })
		}},
		{"fig7", func() error {
			rows, err := s.Fig7()
			if err != nil {
				return err
			}
			exp.PrintFig7(w, rows)
			return csvOut("fig7", func(f io.Writer) error { return exp.Fig7CSV(f, rows) })
		}},
		{"fig8", func() error {
			rows, err := s.Fig8()
			if err != nil {
				return err
			}
			exp.PrintFig8(w, rows)
			return csvOut("fig8", func(f io.Writer) error { return exp.Fig8CSV(f, rows) })
		}},
		{"fig9", func() error {
			rows, err := s.Fig9()
			if err != nil {
				return err
			}
			exp.PrintFig9(w, rows)
			return csvOut("fig9", func(f io.Writer) error { return exp.Fig9CSV(f, rows) })
		}},
		{"fig10", func() error {
			curves, err := s.Fig10()
			if err != nil {
				return err
			}
			exp.PrintFig10(w, curves)
			return csvOut("fig10", func(f io.Writer) error { return exp.Fig10CSV(f, curves) })
		}},
		{"fig11", func() error {
			curves, err := s.Fig11()
			if err != nil {
				return err
			}
			exp.PrintFig11(w, curves)
			return csvOut("fig11", func(f io.Writer) error { return exp.Fig11CSV(f, curves) })
		}},
	}

	matched := false
	for _, r := range runners {
		if *expName != "all" && *expName != r.name {
			continue
		}
		matched = true
		start := time.Now()
		if err := r.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			return 1
		}
		fmt.Fprintf(w, "[%s completed in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expName)
		return 2
	}
	return 0
}

// matrixSetups prepares the requested topologies through the builder
// shared with netsmith serve (exp.MatrixSetups): mesh baseline with
// expert NDBT routing and/or a latency-optimized NetSmith topology
// (fast-budget synthesis unless -full) with MCLB routing. With a
// store, synthesis results are content-addressed too (fixed budgets
// are deterministic), so re-runs skip the search.
func matrixSetups(topos string, g *layout.Grid, cl layout.Class, st *store.Store, full bool, energyWeight, robustWeight float64, seed int64, population, generations int) ([]*sim.Setup, error) {
	iters := 20000
	if full {
		iters = 80000
	}
	setups, _, err := exp.MatrixSetups(strings.Split(topos, ","), g, cl, st, energyWeight, robustWeight, seed, iters, population, generations)
	return setups, err
}

// matrixFaults parses -faults into fault-axis factories, failing fast
// on bad names/params by building each schedule against the grid's mesh
// before any synthesis or simulation time is spent. (RunMatrix rebuilds
// per topology; a schedule valid on the mesh can still fail on another
// topology, e.g. a link= event naming a link it lacks — that error
// surfaces from RunMatrix.)
func matrixFaults(args string, g *layout.Grid) ([]sim.FaultFactory, error) {
	if strings.TrimSpace(args) == "" {
		return nil, nil
	}
	reg := fault.Default()
	mesh := expert.Mesh(g)
	// The fault-free baseline always leads the axis: degradation columns
	// are only meaningful against it, and its cells share store keys with
	// matrices that never had a fault axis.
	factories := []sim.FaultFactory{sim.FaultRegistryFactory(reg, "none", nil)}
	seen := map[string]bool{factories[0].Name: true}
	for _, arg := range strings.Split(args, ",") {
		name, params, err := fault.ParseScheduleArg(strings.TrimSpace(arg))
		if err != nil {
			return nil, err
		}
		if _, err := reg.Build(name, mesh, params); err != nil {
			return nil, err
		}
		f := sim.FaultRegistryFactory(reg, name, params)
		if seen[f.Name] {
			continue
		}
		seen[f.Name] = true
		factories = append(factories, f)
	}
	return factories, nil
}

func runMatrix(grid, class, topos, patterns, rates, traceFile, faults, csvDir, storeDir, shardArg string, smoke, full, energy, unbatched bool, energyWeight, robustWeight float64, seed int64, population, generations int) error {
	g, err := layout.ParseGrid(grid)
	if err != nil {
		return err
	}
	cl, err := layout.ParseClass(class)
	if err != nil {
		return err
	}
	shard, err := sim.ParseShard(shardArg)
	if err != nil {
		return err
	}
	faultFactories, err := matrixFaults(faults, g)
	if err != nil {
		return err
	}
	var st *store.Store
	if storeDir != "" {
		if st, err = store.Open(storeDir); err != nil {
			return err
		}
	}
	setups, err := matrixSetups(topos, g, cl, st, full, energyWeight, robustWeight, seed, population, generations)
	if err != nil {
		return err
	}

	env := traffic.GridEnv(g)
	reg := traffic.Default()
	var factories []sim.PatternFactory
	for _, arg := range strings.Split(patterns, ",") {
		name, params, err := traffic.ParsePatternArg(strings.TrimSpace(arg))
		if err != nil {
			return err
		}
		// Fail fast on bad names/params before burning simulation time.
		if _, err := reg.Build(name, env, params); err != nil {
			return err
		}
		factories = append(factories, sim.RegistryFactory(reg, name, env, params))
	}
	if traceFile != "" {
		// Parse the trace once; each cell replays the in-memory records
		// (the registry's "trace" entry would re-read the file per cell).
		raw, err := os.ReadFile(traceFile)
		if err != nil {
			return err
		}
		recs, err := traffic.ParseTrace(bytes.NewReader(raw))
		if err != nil {
			return err
		}
		tag := strings.TrimSuffix(filepath.Base(traceFile), ".csv")
		if _, err := traffic.NewReplay(tag, env.N, recs, true); err != nil {
			return err
		}
		// The store key must follow the trace's content, not its file
		// name: two different traces named alike may not collide.
		sum := sha256.Sum256(raw)
		factories = append(factories, sim.PatternFactory{
			Name: "trace/" + tag,
			Key:  fmt.Sprintf("trace:%x:loop=true", sum[:8]),
			New: func() (traffic.Pattern, error) {
				return traffic.NewReplay(tag, env.N, recs, true)
			},
		})
	}

	rateGrid, err := parseFloatList("rate", rates, false)
	if err != nil {
		return err
	}

	// Use the shared presets: the budgets feed cell cache keys, so CLI
	// and serve runs sharing a store must agree on them.
	var base sim.Config
	fidelity := sim.FidelityFast
	switch {
	case smoke:
		fidelity = sim.FidelitySmoke
	case full:
		fidelity = sim.FidelityFull
	}
	if err := sim.ApplyFidelity(&base, fidelity); err != nil {
		return err
	}
	base.CollectEnergy = energy

	start := time.Now()
	res, err := sim.RunMatrix(sim.MatrixConfig{
		Setups: setups, Patterns: factories, Faults: faultFactories,
		Rates: rateGrid,
		Base:  base, Seed: seed,
		Store: st, Shard: shard,
		Unbatched: unbatched,
	})
	var inc *sim.IncompleteError
	if errors.As(err, &inc) {
		// Not a failure: this shard's cells are persisted; the matrix
		// assembles once the remaining shards run against the store.
		fmt.Printf("[shard %s done: %d computed, %d cached of %d cells; %d pending — run the other shards against %s, then any re-run emits the merged matrix]\n",
			inc.Shard, inc.Computed, inc.CacheHits, inc.Cells, inc.Missing, storeDir)
		return nil
	}
	if err != nil {
		return err
	}
	exp.PrintMatrix(os.Stdout, res)
	if len(faultFactories) > 0 {
		fmt.Printf("[matrix: %d topologies x %d patterns x %d faults x %d rates in %v]\n",
			len(setups), len(factories), len(faultFactories), len(rateGrid), time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("[matrix: %d topologies x %d patterns x %d rates in %v]\n",
			len(setups), len(factories), len(rateGrid), time.Since(start).Round(time.Millisecond))
	}
	if st != nil {
		fmt.Printf("[store %s: %d cells simulated, %d from cache]\n",
			storeDir, res.Stats.Computed, res.Stats.CacheHits)
		if res.Stats.StoreErrors > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d cells could not be persisted to %s (results above are complete; those cells will recompute on resume)\n",
				res.Stats.StoreErrors, storeDir)
		}
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		cf, err := os.Create(filepath.Join(csvDir, "matrix.csv"))
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := exp.MatrixCSV(cf, res); err != nil {
			return err
		}
		jf, err := os.Create(filepath.Join(csvDir, "matrix.json"))
		if err != nil {
			return err
		}
		defer jf.Close()
		if err := exp.MatrixJSON(jf, res); err != nil {
			return err
		}
	}
	return nil
}

// parseFloatList parses a comma-separated float list; an empty string
// is nil (callers default it). Values must be finite and positive, or
// merely non-negative with allowZero (weight grids price terms away
// with 0).
func parseFloatList(name, args string, allowZero bool) ([]float64, error) {
	if strings.TrimSpace(args) == "" {
		return nil, nil
	}
	var vs []float64
	for _, f := range strings.Split(args, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 || (!allowZero && v == 0) {
			return nil, fmt.Errorf("bad %s %q", name, f)
		}
		vs = append(vs, v)
	}
	return vs, nil
}

// runPareto sweeps the synthesis weight grid into a dominated-point-free
// frontier with fleet-level energy accounting. Shares the synthesis and
// cell presets (iteration budgets, seed defaults, fidelity cycle
// budgets) with -matrix and netsmith serve, so all three fronts warm
// each other's stores.
func runPareto(grid, class, energyWeights, robustWeights, rates, csvDir, storeDir, shardArg string, smoke, full bool, seed int64, population, generations int) error {
	g, err := layout.ParseGrid(grid)
	if err != nil {
		return err
	}
	cl, err := layout.ParseClass(class)
	if err != nil {
		return err
	}
	shard, err := sim.ParseShard(shardArg)
	if err != nil {
		return err
	}
	ews, err := parseFloatList("energy weight", energyWeights, true)
	if err != nil {
		return err
	}
	rws, err := parseFloatList("robust weight", robustWeights, true)
	if err != nil {
		return err
	}
	rateGrid, err := parseFloatList("rate", rates, false)
	if err != nil {
		return err
	}
	var st *store.Store
	if storeDir != "" {
		if st, err = store.Open(storeDir); err != nil {
			return err
		}
	}
	iters := 20000
	if full {
		iters = 80000
	}
	fidelity := sim.FidelityFast
	switch {
	case smoke:
		fidelity = sim.FidelitySmoke
	case full:
		fidelity = sim.FidelityFull
	}

	start := time.Now()
	fr, err := exp.ParetoSweep(exp.ParetoConfig{
		Base:          synth.MatrixNSConfig(g, cl, 0, 0, seed, iters, population, generations),
		EnergyWeights: ews,
		RobustWeights: rws,
		Rates:         rateGrid,
		Fidelity:      fidelity,
		Store:         st,
		Shard:         shard,
	})
	var inc *exp.ParetoIncompleteError
	if errors.As(err, &inc) {
		// Not a failure: this shard's points are persisted; the frontier
		// assembles once the remaining shards run against the store.
		fmt.Printf("[pareto shard %s done: %d of %d points owned (%d synthesized, %d cached; %d cells, %d computed); %d pending — run the other shards against %s, then an unsharded re-run emits the frontier]\n",
			inc.Shard, inc.Owned, inc.Points, inc.Synthesized, inc.SynthCached, inc.Cells, inc.CellsComputed, inc.Pending, storeDir)
		return nil
	}
	if err != nil {
		return err
	}
	exp.PrintFrontier(os.Stdout, fr)
	fmt.Printf("[pareto: %d points (%d energy x %d robust weights) in %v]\n",
		fr.Swept, len(fr.EnergyWeights), len(fr.RobustWeights), time.Since(start).Round(time.Millisecond))
	if st != nil {
		if fr.Stats.FrontierCached {
			fmt.Printf("[store %s: frontier served from cache; 0 points synthesized, 0 cells simulated]\n", storeDir)
		} else {
			fmt.Printf("[store %s: %d points synthesized, %d from cache; %d cells simulated, %d from cache]\n",
				storeDir, fr.Stats.Synthesized, fr.Stats.SynthCached, fr.Stats.CellsComputed, fr.Stats.CellsCached)
			if fr.Stats.StoreErrors > 0 {
				fmt.Fprintf(os.Stderr, "warning: %d cells could not be persisted to %s (the frontier above is complete; those cells recompute on re-run)\n",
					fr.Stats.StoreErrors, storeDir)
			}
		}
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		cf, err := os.Create(filepath.Join(csvDir, "frontier.csv"))
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := exp.FrontierCSV(cf, fr); err != nil {
			return err
		}
		jf, err := os.Create(filepath.Join(csvDir, "frontier.json"))
		if err != nil {
			return err
		}
		defer jf.Close()
		if err := exp.FrontierJSON(jf, fr); err != nil {
			return err
		}
	}
	return nil
}
