// Command netsmith generates a network-on-interposer topology for a
// router layout, link-length class and radix, optimizing average hop
// count (latop), sparsest-cut bandwidth (scop) or a traffic pattern
// (shufopt), and prints the topology with its metrics, MCLB routing
// summary and deadlock-free VC assignment.
//
// Example:
//
//	netsmith -rows 4 -cols 5 -class medium -objective latop -seconds 10
//
// The serve subcommand instead runs the HTTP API: synthesis and
// scenario-matrix jobs on a bounded, priority-ordered worker pool,
// backed by the content-addressed result store so repeated requests
// are answered from cache without re-simulating.
//
//	netsmith serve -addr :8080 -store .netsmith-store
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"kind":"matrix","grid":"4x4"}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -N localhost:8080/v1/jobs/j000001/events   # SSE progress
//
// With -shards N the server also acts as a cluster coordinator,
// splitting each matrix job into N shard leases that worker processes
// sharing the same store claim and execute:
//
//	netsmith serve -addr :8080 -store /shared/store -shards 4
//	netsmith serve -worker -coordinator http://host:8080 -store /shared/store
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netsmith/internal/layout"
	"netsmith/internal/route"
	"netsmith/internal/serve"
	"netsmith/internal/store"
	"netsmith/internal/synth"
	"netsmith/internal/traffic"
	"netsmith/internal/vc"
)

// runServe is the serve subcommand: netsmith serve [flags]. It covers
// both roles of cluster mode — coordinator (default) and worker
// (-worker -coordinator URL) — because both sit on the same store.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	storeDir := fs.String("store", ".netsmith-store", "content-addressed result store directory")
	workers := fs.Int("workers", 2, "concurrent jobs")
	queue := fs.Int("queue", 32, "pending-job queue depth (full queue answers 503)")
	rate := fs.Float64("rate", 0, "per-client job submissions per second (0 = unlimited)")
	burst := fs.Int("burst", 0, "per-client submission burst (0 = 2x rate)")
	shards := fs.Int("shards", 0, "default matrix shard count for cluster execution (0 = run matrices locally)")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "cluster shard lease TTL; a worker silent this long loses its shard")
	selfWork := fs.Bool("selfwork", true, "coordinator executes unclaimed shards itself after one lease TTL")
	worker := fs.Bool("worker", false, "run as a cluster worker instead of a coordinator")
	coordinator := fs.String("coordinator", "", "coordinator base URL (worker mode), e.g. http://host:8080")
	poll := fs.Duration("poll", 500*time.Millisecond, "worker claim-poll interval when idle")
	name := fs.String("name", "", "worker name reported to the coordinator (default worker-<host>-<pid>)")
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	st, err := store.Open(*storeDir)
	if err != nil {
		fatal(err)
	}
	if *worker {
		if *coordinator == "" {
			fatal(fmt.Errorf("worker mode needs -coordinator URL"))
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Printf("netsmith worker: coordinator %s (store %s)\n", *coordinator, *storeDir)
		err := serve.RunWorker(ctx, serve.WorkerConfig{
			Coordinator: *coordinator,
			Store:       st,
			Name:        *name,
			Poll:        *poll,
			Logf:        log.Printf,
		})
		if err != nil && ctx.Err() == nil {
			fatal(err)
		}
		return
	}
	srv, err := serve.New(serve.Config{
		Store: st, Workers: *workers, QueueDepth: *queue,
		RatePerSec: *rate, RateBurst: *burst,
		ClusterShards: *shards, LeaseTTL: *leaseTTL,
		DisableSelfWork: !*selfWork,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	fmt.Printf("netsmith serve: listening on %s (store %s, %d workers, queue %d, shards %d)\n",
		*addr, *storeDir, *workers, *queue, *shards)
	// Header/read timeouts keep slow clients (slowloris) from pinning
	// connections and file descriptors indefinitely; request bodies are
	// small JSON, so tight bounds are safe.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
	if err := hs.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	rows := flag.Int("rows", 4, "router grid rows")
	cols := flag.Int("cols", 5, "router grid columns")
	className := flag.String("class", "medium", "link-length class: small, medium, large")
	objective := flag.String("objective", "latop", "objective: latop, scop, shufopt")
	radix := flag.Int("radix", 4, "per-direction router radix")
	symmetric := flag.Bool("symmetric", false, "force symmetric links (constraint C9)")
	maxDiameter := flag.Int("diameter", 0, "optional diameter bound (constraint C8)")
	seconds := flag.Float64("seconds", 5, "time budget for the optimizer")
	iterations := flag.Int("iterations", 0, "fixed annealing-step budget instead of -seconds (deterministic output)")
	population := flag.Int("population", 0, "population size (0 = restart annealer; >= 2 enables population mode)")
	generations := flag.Int("generations", 0, "population evolution rounds (default 8 when -population is set)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	class, err := layout.ParseClass(*className)
	if err != nil {
		fatal(err)
	}
	g := layout.NewGrid(*rows, *cols)
	cfg := synth.Config{
		Grid: g, Class: class, Radix: *radix,
		Symmetric: *symmetric, MaxDiameter: *maxDiameter,
		Seed: *seed, Iterations: 1 << 30, Restarts: 1 << 20,
		TimeBudget:  time.Duration(*seconds * float64(time.Second)),
		Population:  *population,
		Generations: *generations,
	}
	if *iterations > 0 {
		// A fixed step budget makes the run a pure function of the flags:
		// rerunning prints byte-identical output (the CI smoke relies on
		// this to diff population runs across processes).
		cfg.Iterations = *iterations
		cfg.Restarts = 4
		cfg.TimeBudget = 0
	}
	switch *objective {
	case "latop":
		cfg.Objective = synth.LatOp
	case "scop":
		cfg.Objective = synth.SCOp
	case "shufopt":
		cfg.Objective = synth.Weighted
		cfg.Weights = traffic.Shuffle{N: g.N()}.WeightMatrix()
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}

	fmt.Printf("NetSmith: %s, %s class, radix %d, objective %s\n", g, class, *radix, *objective)
	res, err := synth.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	t := res.Topology
	fmt.Printf("objective=%.4g bound=%.4g gap=%.1f%% optimal=%v\n",
		res.Objective, res.Bound, 100*res.Gap, res.Optimal)
	fmt.Printf("links=%d diameter=%d avgHops=%.3f bisectionBW=%d sparsestCut=%.4f\n",
		t.NumLinks(), t.Diameter(), t.AverageHops(), t.BisectionBandwidth(), t.SparsestCut().Bandwidth)
	fmt.Println("link list (directed):")
	for _, l := range t.Links() {
		fmt.Printf("  %d -> %d\n", l.From, l.To)
	}

	r, err := route.MCLB(t, route.MCLBOptions{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("MCLB routing: max channel load %d, avg hops %.3f\n", r.MaxChannelLoad(), r.AverageHops())
	a, err := vc.Assign(r, vc.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if err := a.Verify(r); err != nil {
		fatal(err)
	}
	fmt.Printf("deadlock-free VC assignment: %d escape VCs, occupancy %v\n", a.NumVCs, a.Occupancy(r))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netsmith:", err)
	os.Exit(1)
}
