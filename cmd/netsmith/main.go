// Command netsmith generates a network-on-interposer topology for a
// router layout, link-length class and radix, optimizing average hop
// count (latop), sparsest-cut bandwidth (scop) or a traffic pattern
// (shufopt), and prints the topology with its metrics, MCLB routing
// summary and deadlock-free VC assignment.
//
// Example:
//
//	netsmith -rows 4 -cols 5 -class medium -objective latop -seconds 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"netsmith/internal/layout"
	"netsmith/internal/route"
	"netsmith/internal/synth"
	"netsmith/internal/traffic"
	"netsmith/internal/vc"
)

func main() {
	rows := flag.Int("rows", 4, "router grid rows")
	cols := flag.Int("cols", 5, "router grid columns")
	className := flag.String("class", "medium", "link-length class: small, medium, large")
	objective := flag.String("objective", "latop", "objective: latop, scop, shufopt")
	radix := flag.Int("radix", 4, "per-direction router radix")
	symmetric := flag.Bool("symmetric", false, "force symmetric links (constraint C9)")
	maxDiameter := flag.Int("diameter", 0, "optional diameter bound (constraint C8)")
	seconds := flag.Float64("seconds", 5, "time budget for the optimizer")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	class, err := layout.ParseClass(*className)
	if err != nil {
		fatal(err)
	}
	g := layout.NewGrid(*rows, *cols)
	cfg := synth.Config{
		Grid: g, Class: class, Radix: *radix,
		Symmetric: *symmetric, MaxDiameter: *maxDiameter,
		Seed: *seed, Iterations: 1 << 30, Restarts: 1 << 20,
		TimeBudget: time.Duration(*seconds * float64(time.Second)),
	}
	switch *objective {
	case "latop":
		cfg.Objective = synth.LatOp
	case "scop":
		cfg.Objective = synth.SCOp
	case "shufopt":
		cfg.Objective = synth.Weighted
		cfg.Weights = traffic.Shuffle{N: g.N()}.WeightMatrix()
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}

	fmt.Printf("NetSmith: %s, %s class, radix %d, objective %s\n", g, class, *radix, *objective)
	res, err := synth.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	t := res.Topology
	fmt.Printf("objective=%.4g bound=%.4g gap=%.1f%% optimal=%v\n",
		res.Objective, res.Bound, 100*res.Gap, res.Optimal)
	fmt.Printf("links=%d diameter=%d avgHops=%.3f bisectionBW=%d sparsestCut=%.4f\n",
		t.NumLinks(), t.Diameter(), t.AverageHops(), t.BisectionBandwidth(), t.SparsestCut().Bandwidth)
	fmt.Println("link list (directed):")
	for _, l := range t.Links() {
		fmt.Printf("  %d -> %d\n", l.From, l.To)
	}

	r, err := route.MCLB(t, route.MCLBOptions{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("MCLB routing: max channel load %d, avg hops %.3f\n", r.MaxChannelLoad(), r.AverageHops())
	a, err := vc.Assign(r, vc.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if err := a.Verify(r); err != nil {
		fatal(err)
	}
	fmt.Printf("deadlock-free VC assignment: %d escape VCs, occupancy %v\n", a.NumVCs, a.Occupancy(r))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netsmith:", err)
	os.Exit(1)
}
