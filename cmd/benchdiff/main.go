// Command benchdiff gates CI on benchmark regressions: it parses `go
// test -bench` output (the bench-smoke.txt artifact) and compares every
// benchmark against a committed baseline, failing when ns/op regresses
// beyond a threshold (default +25%) or allocs/op regresses at all
// (allocation counts are deterministic, so any increase is a real
// regression).
//
// Usage:
//
//	benchdiff -baseline BENCH_BASELINE.json -bench bench-smoke.txt
//	benchdiff -baseline BENCH_BASELINE.json -bench bench-smoke.txt -update
//
// -update rewrites the baseline from the bench output (run locally after
// an intentional performance change and commit the result). Benchmarks
// present in the baseline but missing from the output fail the gate (so
// coverage cannot silently disappear) unless -allow-missing is set;
// benchmarks missing from the baseline are reported but do not fail.
//
// Exit status: 0 clean, 1 regression, 2 usage or parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// BaselineEntry is one benchmark's recorded performance.
type BaselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the committed BENCH_BASELINE.json shape.
type Baseline struct {
	Note       string                   `json:"note,omitempty"`
	Benchmarks map[string]BaselineEntry `json:"benchmarks"`
}

// parseBench extracts name -> (ns/op, allocs/op) from go test -bench
// output. The trailing -N GOMAXPROCS suffix is stripped so baselines
// port across machines; extra ReportMetric pairs are ignored. Duplicate
// lines for one benchmark (e.g. a baseline recorded from several
// concatenated runs, for worst-case headroom against timing noise) are
// aggregated by maximum.
func parseBench(path string) (map[string]BaselineEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]BaselineEntry{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := BaselineEntry{NsPerOp: -1, AllocsPerOp: -1}
		// fields[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "allocs/op":
				e.AllocsPerOp = int64(v)
			}
		}
		if e.NsPerOp < 0 {
			continue
		}
		if prev, ok := out[name]; ok {
			if prev.NsPerOp > e.NsPerOp {
				e.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp > e.AllocsPerOp {
				e.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[name] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in %s", path)
	}
	return out, nil
}

func writeBaseline(path string, measured map[string]BaselineEntry, note string) error {
	b := Baseline{Note: note, Benchmarks: measured}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "committed baseline file")
	benchPath := flag.String("bench", "bench-smoke.txt", "go test -bench output to check")
	nsThreshold := flag.Float64("ns-threshold", 0.25, "allowed fractional ns/op regression (0.25 = +25%)")
	update := flag.Bool("update", false, "rewrite the baseline from the bench output")
	allowMissing := flag.Bool("allow-missing", false, "do not fail when a baseline benchmark is absent from the output")
	flag.Parse()

	measured, err := parseBench(*benchPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	if *update {
		note := fmt.Sprintf("Regenerate with: go run ./cmd/benchdiff -bench <bench output> -update. "+
			"Gate: ns/op > +%.0f%% or any allocs/op increase fails CI.", 100**nsThreshold)
		if err := writeBaseline(*baselinePath, measured, note); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *baselinePath, len(measured))
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v (run with -update to create it)\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := measured[name]
		if !ok {
			if *allowMissing {
				fmt.Printf("SKIP  %-32s not in bench output\n", name)
				continue
			}
			fmt.Printf("FAIL  %-32s missing from bench output (use -allow-missing to waive)\n", name)
			failed = true
			continue
		}
		status := "ok  "
		var reasons []string
		if want.NsPerOp > 0 && got.NsPerOp > want.NsPerOp*(1+*nsThreshold) {
			reasons = append(reasons, fmt.Sprintf("ns/op +%.0f%% > +%.0f%% allowed",
				100*(got.NsPerOp/want.NsPerOp-1), 100**nsThreshold))
		}
		if want.AllocsPerOp >= 0 && got.AllocsPerOp > want.AllocsPerOp {
			reasons = append(reasons, fmt.Sprintf("allocs/op %d > %d", got.AllocsPerOp, want.AllocsPerOp))
		}
		if len(reasons) > 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-32s ns/op %12.0f -> %12.0f (%+.1f%%)  allocs/op %6d -> %6d  %s\n",
			status, name, want.NsPerOp, got.NsPerOp, 100*(got.NsPerOp/want.NsPerOp-1),
			want.AllocsPerOp, got.AllocsPerOp, strings.Join(reasons, "; "))
	}
	for name := range measured {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("NEW   %-32s not in baseline (add with -update)\n", name)
		}
	}
	if failed {
		fmt.Println("benchdiff: performance regression vs baseline")
		os.Exit(1)
	}
	fmt.Println("benchdiff: all benchmarks within budget")
}
