package netsmith

import (
	"fmt"
	"testing"
	"time"
)

func TestFacadeGenerateAndPrepare(t *testing.T) {
	var progress int
	res, err := Generate(Options{
		Grid: Grid4x5, Class: Medium, Objective: LatOp,
		Seed: 1, TimeBudget: 800 * time.Millisecond,
		Progress: func(ProgressPoint) { progress++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	tp := res.Topology
	if !tp.IsConnected() || !tp.RespectsRadix(4) || !tp.RespectsLinkLengths() {
		t.Fatal("facade-generated topology violates constraints")
	}
	if progress == 0 {
		t.Error("progress callback never fired")
	}
	net, err := Prepare(tp)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := SweepUniform(net, []float64{0.01, 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ZeroLoadLatencyNs <= 0 {
		t.Error("no latency measured via facade")
	}
}

// TestFacadeScale100 pins the beyond-64-router path through the public
// API: Grid10x10 synthesizes end to end.
func TestFacadeScale100(t *testing.T) {
	res, err := Generate(Options{
		Grid: Grid10x10, Class: Medium, Objective: LatOp,
		Seed: 3, TimeBudget: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tp := res.Topology
	if tp.N() != 100 {
		t.Fatalf("expected 100 routers, got %d", tp.N())
	}
	if !tp.IsConnected() || !tp.RespectsRadix(4) || !tp.RespectsLinkLengths() {
		t.Fatal("100-router facade topology violates constraints")
	}
}

func TestFacadeBaselines(t *testing.T) {
	names := BaselineNames(Grid4x5)
	if len(names) == 0 {
		t.Fatal("no baselines")
	}
	for _, n := range names {
		tp, err := Baseline(n, Grid4x5)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if !tp.IsConnected() {
			t.Errorf("%s disconnected", n)
		}
	}
	if Mesh(Grid4x5).NumLinks() != 31 {
		t.Error("mesh helper broken")
	}
	if FoldedTorus(Grid4x5).NumLinks() != 40 {
		t.Error("folded torus helper broken")
	}
}

func TestFacadeRoutingAndVCs(t *testing.T) {
	kite, err := Baseline("Kite-Medium", Grid4x5)
	if err != nil {
		t.Fatal(err)
	}
	mclb, err := MCLB(kite, 1)
	if err != nil {
		t.Fatal(err)
	}
	ndbt, err := NDBT(kite, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mclb.MaxChannelLoad() > ndbt.MaxChannelLoad() {
		t.Errorf("MCLB %d worse than NDBT %d", mclb.MaxChannelLoad(), ndbt.MaxChannelLoad())
	}
	a, err := AssignVCs(mclb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumVCs < 1 {
		t.Error("no VC layers")
	}
}

func TestFacadePatternOp(t *testing.T) {
	res, err := Generate(Options{
		Grid: Grid4x5, Class: Large, Objective: PatternOp,
		Weights: ShuffleWeights(20), Seed: 2, TimeBudget: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Topology.IsConnected() {
		t.Fatal("pattern-optimized topology disconnected")
	}
}

// TestFacadeStore exercises the caching surface through the public
// API: GenerateCached round-trips a synthesis, and a store-backed
// RunMatrix resumes from cache with identical output.
func TestFacadeStore(t *testing.T) {
	st, err := OpenStore(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	// Time-budgeted generation must bypass the cache.
	if _, hit, err := GenerateCached(st, Options{
		Grid: Grid4x5, Class: Medium, Objective: LatOp,
		Seed: 1, TimeBudget: 200 * time.Millisecond,
	}); err != nil || hit {
		t.Fatalf("time-budgeted generate: hit=%v err=%v", hit, err)
	}

	g := NewGrid(3, 3)
	net, err := PrepareNDBT(Mesh(g))
	if err != nil {
		t.Fatal(err)
	}
	mc := MatrixConfig{
		Setups:   []*Network{net},
		Patterns: []PatternFactory{PatternFactoryFor("uniform", g, nil)},
		Rates:    []float64{0.02, 0.10},
		Base:     SimConfig{WarmupCycles: 200, MeasureCycles: 500, DrainCycles: 1000},
		Seed:     3,
		Store:    st,
	}
	first, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Computed != 2 || first.Stats.CacheHits != 0 {
		t.Fatalf("first run stats: %+v", first.Stats)
	}
	second, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Computed != 0 || second.Stats.CacheHits != 2 {
		t.Fatalf("second run stats: %+v", second.Stats)
	}
	if second.Curves[0].ZeroLoadLatencyNs != first.Curves[0].ZeroLoadLatencyNs {
		t.Error("cached curve differs from computed one")
	}
	if s, err := ParseShard("1/4"); err != nil || (s != Shard{Index: 1, Count: 4}) {
		t.Errorf("ParseShard: %+v, %v", s, err)
	}
}

// worstSingleLinkDelivery exhaustively fails every directed link of a
// topology (one schedule per link, all in one matrix fault axis) and
// returns the minimum delivered fraction across the failures.
func worstSingleLinkDelivery(t *testing.T, tp *Topology) float64 {
	t.Helper()
	net, err := Prepare(tp)
	if err != nil {
		t.Fatal(err)
	}
	var faults []FaultFactory
	for _, l := range tp.Links() {
		faults = append(faults, FaultFactoryFor("list", map[string]string{
			"events": fmt.Sprintf("link=%d>%d@400", l.From, l.To)}))
	}
	res, err := RunMatrix(MatrixConfig{
		Setups:   []*Network{net},
		Patterns: []PatternFactory{PatternFactoryFor("uniform", Grid4x5, nil)},
		Faults:   faults,
		Rates:    []float64{0.05},
		Base:     SimConfig{WarmupCycles: 300, MeasureCycles: 800, DrainCycles: 1600},
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	worst := 1.0
	for _, c := range res.Curves {
		for _, p := range c.Points {
			if p.DeliveredFraction < worst {
				worst = p.DeliveredFraction
			}
		}
	}
	return worst
}

// TestFacadeRobustSynthesisSurvivesLinkFailures is the robustness
// acceptance pin: under the exhaustive single-link-failure sweep, a
// fragility-priced topology must deliver strictly more traffic in its
// worst case than the energy-only topology synthesized from the same
// options — and must have no critical links at all.
func TestFacadeRobustSynthesisSurvivesLinkFailures(t *testing.T) {
	base := Options{Grid: Grid4x5, Class: Medium, Objective: LatOp,
		EnergyWeight: 30, Seed: 4, Iterations: 8000, Restarts: 2}
	fragile, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	robustOpts := base
	robustOpts.RobustWeight = 50
	robust, err := Generate(robustOpts)
	if err != nil {
		t.Fatal(err)
	}
	if robust.CriticalLinks != 0 {
		t.Fatalf("robust synthesis left %d critical links (fragility %d)",
			robust.CriticalLinks, robust.Fragility)
	}

	fragileWorst := worstSingleLinkDelivery(t, fragile.Topology)
	robustWorst := worstSingleLinkDelivery(t, robust.Topology)
	if robustWorst <= fragileWorst {
		t.Errorf("fragility pricing bought nothing: worst delivered fraction %v (robust) vs %v (energy-only)",
			robustWorst, fragileWorst)
	}
	// With no critical links every failure reroutes; only in-flight
	// flits on the dying link are lost.
	if robustWorst < 0.95 {
		t.Errorf("robust topology worst-case delivered fraction %v, want >= 0.95", robustWorst)
	}
}

func TestFacadeTrafficConstructors(t *testing.T) {
	if UniformTraffic(20).Name() != "uniform" {
		t.Error("uniform name")
	}
	if ShuffleTraffic(20).Name() != "shuffle" {
		t.Error("shuffle name")
	}
	if MemoryTraffic(Grid4x5).Name() != "memory" {
		t.Error("memory name")
	}
	w := ShuffleWeights(20)
	if len(w) != 20 || w[1][2] != 1 {
		t.Error("shuffle weights: src 1 -> dst 2 expected")
	}
}
