// Package netsmith is an optimization framework for machine-discovered
// network topologies, reproducing Green and Thottethodi, "NetSmith: An
// Optimization Framework for Machine-Discovered Network Topologies"
// (ICPP 2024), and growing it toward a servable, cache-backed system.
//
// Given the physical layout of interposer routers, a link-length budget
// and a router radix, NetSmith discovers network-on-interposer (NoI)
// topologies that minimize average hop count (LatOp) or maximize
// sparsest-cut bandwidth (SCOp), complete with minimum-max-channel-load
// (MCLB) shortest-path routing tables and deadlock-free virtual-channel
// assignments. Expert-designed baselines (Mesh, Folded Torus, the Kite
// family, Butter Donut, Double Butterfly, LPBT) and a flit-level network
// simulator are included for evaluation.
//
// # Synthesis
//
// Generate searches the constrained topology space (simulated annealing
// with exact incremental evaluation plus branch-and-bound bounds; see
// DESIGN.md) for a router grid and objective:
//
//	res, err := netsmith.Generate(netsmith.Options{
//		Grid:      netsmith.Grid4x5,
//		Class:     netsmith.Medium,
//		Objective: netsmith.LatOp,
//	})
//	// res.Topology has the discovered network; res.Bound/res.Gap the
//	// optimality certificate.
//
// Grids are not capped at the paper's sizes: NewGrid(rows, cols)
// accepts any shape (Grid10x10 exercises the >64-router path).
// Baseline and Mesh/FoldedTorus return the expert-designed comparison
// topologies. Fixed-budget runs (Iterations/Restarts set, no
// TimeBudget) are deterministic: the same Options produce the same
// topology at any GOMAXPROCS.
//
// Options.Population (>= 2) switches the fixed-budget search to
// population mode: a pool of topologies evolved for
// Options.Generations rounds (default 8) of tournament crossover with
// journaled connectivity repair, bound-based offspring pruning and
// polish-anneal bursts, elitist-merged deterministically. The total
// budget is Population*(1+Generations)*Iterations annealing steps, and
// the purity contract is unchanged. With GenerateCached, population
// runs also persist their initial portfolio members under weight- and
// seed-agnostic keys, so nearby configs (same grid/class/radix/
// symmetry) warm-start from the store.
//
// # Preparation and simulation
//
// Prepare builds the standard pipeline — MCLB routing plus a verified
// deadlock-free VC assignment — and the resulting Network feeds the
// flit-level simulator:
//
//	net, err := netsmith.Prepare(res.Topology)          // MCLB + VCs
//	curve, err := netsmith.SweepUniform(net, nil, 1)    // latency curve
//
// Sweep and SweepUniform trace latency-vs-injection curves; MCLB, NDBT
// and AssignVCs expose the pipeline stages individually.
//
// # Scenario matrices
//
// RunMatrix crosses prepared topologies with registered workloads
// (PatternNames, BuildPattern, PatternFactoryFor) and a rate grid on a
// bounded worker pool. Matrix output is bit-identical across reruns
// and GOMAXPROCS — the determinism contract that also makes results
// cacheable:
//
//	mc := netsmith.MatrixConfig{
//		Setups:   []*netsmith.Network{net},
//		Patterns: []netsmith.PatternFactory{netsmith.PatternFactoryFor("tornado", g, nil)},
//		Rates:    []float64{0.02, 0.10},
//	}
//	res, err := netsmith.RunMatrix(mc)
//
// # Caching, sharding and resume
//
// OpenStore opens a content-addressed on-disk result store. Attached
// to a MatrixConfig, it caches every cell under a canonical hash of
// its full input (prepared-network fingerprint, workload, rate,
// simulator knobs, seed, schema version): an interrupted run resumed
// with the same store recomputes only missing cells, and re-runs are
// served without simulating, byte-identical to a fresh run.
// MatrixConfig.Shard splits one matrix deterministically across
// machines sharing a store; RunMatrix returns *IncompleteError until
// every shard has contributed, then any run assembles the merged
// result. GenerateCached is the synthesis analogue (fixed-budget
// configs only; time-budgeted searches are wall-clock-dependent and
// never cached):
//
//	st, err := netsmith.OpenStore(".netsmith-store")
//	mc.Store = st
//	mc.Shard = netsmith.Shard{Index: 0, Count: 2} // this machine's half
//	res, err := netsmith.RunMatrix(mc)
//
// # Energy
//
// RunEnergy simulates with activity counters enabled and converts them
// to picojoules with the same 22nm constants as the analytic
// AnalyzePower model (Default22nm), so measured and modeled energy are
// cross-checkable. Options.EnergyWeight adds an energy proxy to the
// synthesis objective.
//
// # Pareto frontiers and fleet energy accounting
//
// ParetoSweep promotes the paper's latency/throughput/energy trade-off
// to a first-class artifact: it synthesizes one topology per
// (EnergyWeight, RobustWeight) grid point (cache-first through the
// synthesis store), measures every distinct candidate with the matrix
// harness, prunes dominated points with an exact non-domination filter
// and reports the surviving Frontier with FleetEnergy aggregates
// (idle vs. active power shares, mean energy per delivered flit).
// Every stage is deterministic, so frontier CSV/JSON emissions are
// byte-identical across GOMAXPROCS and warm/cold stores — a frontier
// diff between code versions is a real behavior change:
//
//	fr, err := netsmith.ParetoSweep(netsmith.ParetoConfig{
//		Base:          synthBase, // weights zero; the grids set them
//		EnergyWeights: []float64{0, 0.5, 1, 2},
//		Store:         st,
//	})
//
// Client.Pareto runs the same sweep as a served job (POST /v1/pareto,
// kind "pareto" on /v1/jobs), shardable across cluster workers like a
// matrix; netbench -pareto is the CLI front end.
//
// # Full system
//
// BuildFullSystem assembles the paper's 64-core, 4-chiplet
// configuration around a NoI topology; RunWorkload plays the modelled
// PARSEC benchmarks (PARSECWorkloads) through it.
//
// # Client
//
// Client is the high-level entry point: one call shape that executes
// jobs in-process (local mode) or against a `netsmith serve`
// coordinator (remote mode, WithServer), with byte-identical results
// either way. A SynthJob/MatrixJob is exactly the POST /v1/jobs wire
// body, so the same value moves between laptop and cluster unchanged:
//
//	c, err := netsmith.NewClient(netsmith.WithStoreDir(".netsmith-store"))
//	out, hit, err := c.Matrix(ctx, netsmith.MatrixJob{Grid: "4x5", Fidelity: "fast"})
//
// Mapping from the lower-level Options surface (which remains fully
// supported — the Client is a convenience layer over the same code,
// nothing is deprecated):
//
//   - Options.Grid ("4x5" via NewGrid/Grid4x5)   → SynthJob.Grid "4x5"
//   - Options.Class (Small/Medium/Large)         → SynthJob.Class "small"|"medium"|"large"
//   - Options.Objective (LatOp/SCOp/PatternOp)   → SynthJob.Objective "latop"|"scop"|"shufopt"
//   - Options.Radix/Symmetric/MaxDiameter/MinCutBW,
//     EnergyWeight/RobustWeight, Seed/Iterations/Restarts
//     → same-named SynthJob fields
//   - Options.TimeBudget and Options.Progress have no Client
//     equivalent: jobs must be deterministic (cacheable), so the
//     Client always runs fixed-budget; use Generate directly for
//     wall-clock-budgeted searches.
//   - MatrixConfig axes → MatrixJob.Grid/Topos/Patterns/Rates/Faults,
//     with Fidelity naming the cycle budgets and Seed defaulting to 42
//     (the netbench -matrix default).
//   - MatrixConfig.Shard is not set by callers: MatrixJob.Shards asks
//     a remote coordinator to fan the matrix out across cluster
//     workers; sharding within a shared store stays available via
//     RunMatrix.
//
// # Command-line tools and serving
//
// cmd/netsmith synthesizes one topology ("netsmith -rows 4 -cols 5")
// and hosts the HTTP API ("netsmith serve": POST /v1/jobs with a
// tagged body enqueues async synth/matrix jobs on a bounded,
// priority-ordered pool; GET /v1/jobs lists and /v1/jobs/{id} polls;
// DELETE cancels mid-run; /v1/jobs/{id}/events streams progress over
// SSE; /metrics exposes Prometheus-style counters; the store answers
// repeats from cache). With -shards N the server becomes a cluster
// coordinator, leasing matrix shards to `netsmith serve -worker`
// processes that share its store. cmd/netbench regenerates the
// paper's tables and figures and runs scenario matrices (-matrix,
// with -store/-shard for cached, resumable, distributed runs).
// cmd/netsim sweeps a single configuration; cmd/calibrate fits the
// power model; cmd/benchdiff gates CI on benchmark regressions.
//
// Runnable walkthroughs live under examples/ (see examples/README.md);
// design notes and fidelity arguments in DESIGN.md.
package netsmith
