// Shuffleopt reproduces the Figure 10 idea: a topology optimized for a
// specific traffic pattern (the gem5 shuffle permutation) outperforms
// both expert designs and uniform-optimized NetSmith topologies on that
// pattern.
package main

import (
	"fmt"
	"log"
	"time"

	"netsmith"
)

func main() {
	grid := netsmith.Grid4x5
	shuffle := netsmith.ShuffleTraffic(grid.N())

	run := func(t *netsmith.Topology, expertRouting bool) {
		var net *netsmith.Network
		var err error
		if expertRouting {
			net, err = netsmith.PrepareNDBT(t)
		} else {
			net, err = netsmith.Prepare(t)
		}
		if err != nil {
			log.Fatal(err)
		}
		sweep, err := netsmith.Sweep(net, shuffle, nil, true, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.2f %18.3f\n", t.Name, sweep.ZeroLoadLatencyNs, sweep.SaturationPerNs)
	}

	fmt.Printf("%-22s %12s %18s\n", "Topology", "Latency(ns)", "SatTput(pkt/n/ns)")
	kite, err := netsmith.Baseline("Kite-Medium", grid)
	if err != nil {
		log.Fatal(err)
	}
	run(kite, true)

	uniformOpt, err := netsmith.Generate(netsmith.Options{
		Grid: grid, Class: netsmith.Medium, Objective: netsmith.LatOp,
		Seed: 42, TimeBudget: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	run(uniformOpt.Topology, false)

	shufOpt, err := netsmith.Generate(netsmith.Options{
		Grid: grid, Class: netsmith.Medium, Objective: netsmith.PatternOp,
		Weights: netsmith.ShuffleWeights(grid.N()),
		Seed:    42, TimeBudget: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	shufOpt.Topology.Name = "NS-ShufOpt-medium"
	run(shufOpt.Topology, false)

	// Same pattern-optimized synthesis, equal evaluation budget, two
	// search strategies: 6 parallel restarts of 6000 steps each versus a
	// population of 4 evolved for 5 generations of 1500-step bursts
	// (both 36000 annealing steps). Fixed budgets are deterministic, so
	// this comparison is reproducible run to run.
	restartOpt, err := netsmith.Generate(netsmith.Options{
		Grid: grid, Class: netsmith.Medium, Objective: netsmith.PatternOp,
		Weights: netsmith.ShuffleWeights(grid.N()),
		Seed:    42, Iterations: 6000, Restarts: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	restartOpt.Topology.Name = "NS-ShufOpt-restarts"
	run(restartOpt.Topology, false)

	popOpt, err := netsmith.Generate(netsmith.Options{
		Grid: grid, Class: netsmith.Medium, Objective: netsmith.PatternOp,
		Weights: netsmith.ShuffleWeights(grid.N()),
		Seed:    42, Iterations: 1500, Restarts: 1,
		Population: 4, Generations: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	popOpt.Topology.Name = "NS-ShufOpt-population"
	run(popOpt.Topology, false)
	fmt.Printf("weighted-hop objective: restarts %.0f vs population %.0f (equal 36000-step budget)\n",
		restartOpt.Objective, popOpt.Objective)
}
