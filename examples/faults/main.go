// Faults walks the robustness story end to end: deterministic fault
// schedules, failure-aware rerouting, and fragility-priced synthesis.
//
// Energy-priced synthesis prunes toward sparse link sets, which is
// exactly where single-link failures hurt: one lost link can cut off
// part of the fabric. Pricing fragility into the objective
// (Options.RobustWeight) buys topologies with no critical links — every
// single failure reroutes — for a modest energy cost. This example
// synthesizes both, then degrades them and the mesh baseline under 1-
// and 2-link failure schedules and compares delivered traffic.
//
// The same fault axis is available from the command line:
//
//	netbench -matrix -faults klinks:k=1:at=400,klinks:k=2:at=400
package main

import (
	"fmt"
	"log"

	"netsmith"
)

func main() {
	// 1. Synthesize two 4x5 topologies from the same options: one priced
	//    on energy alone, one also pricing fragility. Fixed budgets keep
	//    both runs deterministic.
	base := netsmith.Options{
		Grid:         netsmith.Grid4x5,
		Class:        netsmith.Medium,
		Objective:    netsmith.LatOp,
		EnergyWeight: 30,
		Seed:         4,
		Iterations:   8000,
		Restarts:     2,
	}
	fragile, err := netsmith.Generate(base)
	if err != nil {
		log.Fatal(err)
	}
	robustOpts := base
	robustOpts.RobustWeight = 50
	robust, err := netsmith.Generate(robustOpts)
	if err != nil {
		log.Fatal(err)
	}
	fragile.Topology.Name = "NS-energy"
	robust.Topology.Name = "NS-robust"
	fmt.Printf("NS-energy: %d links, critical links not probed (RobustWeight off)\n",
		fragile.Topology.NumLinks())
	fmt.Printf("NS-robust: %d links, %d critical links, fragility %d\n\n",
		robust.Topology.NumLinks(), robust.CriticalLinks, robust.Fragility)

	// 2. Prepare all three contestants (mesh with its expert routing).
	mesh, err := netsmith.PrepareNDBT(netsmith.Mesh(netsmith.Grid4x5))
	if err != nil {
		log.Fatal(err)
	}
	nsEnergy, err := netsmith.Prepare(fragile.Topology)
	if err != nil {
		log.Fatal(err)
	}
	nsRobust, err := netsmith.Prepare(robust.Topology)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The fault axis: a clean baseline plus deterministic 1- and
	//    2-link kills at cycle 400 (inside the measurement window, so
	//    pre/post-fault latencies are both observed). Schedules are
	//    rebuilt per topology — the same seed picks links from each
	//    topology's own dense link-ID order.
	faults := []netsmith.FaultFactory{
		netsmith.FaultFactoryFor("none", nil),
		netsmith.FaultFactoryFor("klinks", map[string]string{"k": "1", "seed": "1", "at": "400"}),
		netsmith.FaultFactoryFor("klinks", map[string]string{"k": "2", "seed": "1", "at": "400"}),
	}

	// 4. Run {3 topologies x 1 pattern x 3 fault cases x 2 rates}. Every
	//    cell is deterministic: faults strike at fixed cycles, rerouting
	//    recomputes survivor paths, and undeliverable flits are dropped
	//    and counted rather than wedging the network.
	matrix, err := netsmith.RunMatrix(netsmith.MatrixConfig{
		Setups:   []*netsmith.Network{mesh, nsEnergy, nsRobust},
		Patterns: []netsmith.PatternFactory{netsmith.PatternFactoryFor("uniform", netsmith.Grid4x5, nil)},
		Faults:   faults,
		Rates:    []float64{0.02, 0.08},
		Base: netsmith.SimConfig{ // fast-fidelity cycle budgets
			WarmupCycles: 1500, MeasureCycles: 4000, DrainCycles: 6000,
		},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Compare worst-case delivery and latency inflation per fault
	//    case. The mesh absorbs failures (every router has redundant
	//    paths), the energy-priced topology can lose whole regions, and
	//    the fragility-priced one reroutes everything.
	fmt.Printf("%-10s %-28s %14s %12s %8s\n",
		"topology", "fault", "min delivered", "lat inflate", "drops")
	for _, setup := range []*netsmith.Network{mesh, nsEnergy, nsRobust} {
		for _, f := range faults {
			c := matrix.FaultCurve(setup.Topo.Name, "uniform", f.Name)
			minDelivered, worstInflation, drops := 1.0, 1.0, 0
			for _, p := range c.Points {
				if p.DeliveredFraction < minDelivered {
					minDelivered = p.DeliveredFraction
				}
				if p.LatencyInflation > worstInflation {
					worstInflation = p.LatencyInflation
				}
				drops += p.DroppedFlits
			}
			label := f.Name
			if label == "" {
				label = "none"
			}
			fmt.Printf("%-10s %-28s %14.4f %12.2fx %8d\n",
				setup.Topo.Name, label, minDelivered, worstInflation, drops)
		}
	}
	fmt.Println("\n(min delivered = lowest delivered fraction across offered rates;")
	fmt.Println(" lat inflate = post-fault / pre-fault average latency; a fragility-")
	fmt.Println(" priced topology keeps delivering after any single link failure,")
	fmt.Println(" where the energy-only design may orphan routers outright)")
}
