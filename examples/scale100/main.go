// Scale100: synthesize topologies well beyond the paper's largest
// (48-router) study. The synthesis engine has no 64-router cap — graphs
// are multi-word bitsets and evaluation is incremental — so a 100-router
// 10x10 interposer optimizes end to end, and the per-restart search
// contexts keep fixed-restart runs deterministic while running restarts
// in parallel.
package main

import (
	"fmt"
	"log"
	"time"

	"netsmith"
)

func main() {
	for _, cfg := range []struct {
		name string
		grid *netsmith.Grid
	}{
		{"paper 8x6 (48 routers)", netsmith.Grid8x6},
		{"beyond-paper 10x10 (100 routers)", netsmith.Grid10x10},
	} {
		start := time.Now()
		res, err := netsmith.Generate(netsmith.Options{
			Grid:      cfg.grid,
			Class:     netsmith.Medium,
			Objective: netsmith.LatOp,
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		t := res.Topology
		mesh := netsmith.Mesh(cfg.grid)
		fmt.Printf("%s: %v\n", cfg.name, time.Since(start).Round(time.Millisecond))
		fmt.Printf("  %-14s avg hops %.3f, diameter %d, %d links\n",
			"NS-LatOp:", t.AverageHops(), t.Diameter(), t.NumLinks())
		fmt.Printf("  %-14s avg hops %.3f, diameter %d, %d links\n",
			"mesh:", mesh.AverageHops(), mesh.Diameter(), mesh.NumLinks())
		fmt.Printf("  objective-bounds gap %.1f%%\n", 100*res.Gap)
	}
}
