// Quickstart: discover a latency-optimized 20-router interposer
// topology, compare it against the Kite expert design, and simulate
// uniform-random traffic on both.
//
// For the full workload registry (transpose, tornado, hotspot, bursty,
// trace replay, ...) over many topologies at once, see
// examples/scenarios and `netbench -matrix`.
package main

import (
	"fmt"
	"log"
	"time"

	"netsmith"
)

func main() {
	// 1. Generate a latency-optimized topology for the paper's 4x5
	//    interposer layout with medium (2,0) links.
	res, err := netsmith.Generate(netsmith.Options{
		Grid:       netsmith.Grid4x5,
		Class:      netsmith.Medium,
		Objective:  netsmith.LatOp,
		Seed:       42,
		TimeBudget: 3 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	ns := res.Topology
	fmt.Printf("discovered %s: %d links, diameter %d, avg hops %.3f (bounds gap %.1f%%)\n",
		ns.Name, ns.NumLinks(), ns.Diameter(), ns.AverageHops(), 100*res.Gap)

	// 2. Load the expert-designed competitor.
	kite, err := netsmith.Baseline("Kite-Medium", netsmith.Grid4x5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expert    %s: %d links, diameter %d, avg hops %.3f\n",
		kite.Name, kite.NumLinks(), kite.Diameter(), kite.AverageHops())

	// 3. Prepare (routing + deadlock-free VCs) and simulate both.
	for _, t := range []*netsmith.Topology{ns, kite} {
		var net *netsmith.Network
		if t == ns {
			net, err = netsmith.Prepare(t) // MCLB routing
		} else {
			net, err = netsmith.PrepareNDBT(t) // expert heuristic routing
		}
		if err != nil {
			log.Fatal(err)
		}
		sweep, err := netsmith.SweepUniform(net, nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s zero-load %.2f ns, saturation %.3f packets/node/ns\n",
			t.Name, sweep.ZeroLoadLatencyNs, sweep.SaturationPerNs)
	}
}
