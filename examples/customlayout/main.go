// Customlayout demonstrates the paper's generality claim: NetSmith is
// not tied to the 4x5 interposer. Here it designs a network for a wide
// 3x8 accelerator-style layout with a tight radix-3 budget and a
// diameter constraint, then verifies every constraint of Table I on the
// result.
package main

import (
	"fmt"
	"log"
	"time"

	"netsmith"
)

func main() {
	grid := netsmith.NewGrid(3, 8)
	res, err := netsmith.Generate(netsmith.Options{
		Grid:        grid,
		Class:       netsmith.Large,
		Objective:   netsmith.LatOp,
		Radix:       3, // C2: tight port budget
		MaxDiameter: 5, // C8: latency guarantee
		Symmetric:   true,
		Seed:        7,
		TimeBudget:  3 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	t := res.Topology
	fmt.Printf("layout: %s, radix 3, symmetric links, diameter <= 5\n", grid)
	fmt.Printf("result: %d links, diameter %d, avg hops %.3f, bisection %d\n",
		t.NumLinks(), t.Diameter(), t.AverageHops(), t.BisectionBandwidth())

	check := func(name string, ok bool) {
		status := "ok"
		if !ok {
			status = "VIOLATED"
		}
		fmt.Printf("  %-28s %s\n", name, status)
	}
	check("C2 radix", t.RespectsRadix(3))
	check("C3 link lengths", t.RespectsLinkLengths())
	check("C8 diameter", t.Diameter() <= 5)
	check("C9 symmetry", t.IsSymmetric())
	check("strong connectivity", t.IsConnected())

	mesh := netsmith.Mesh(grid)
	fmt.Printf("mesh on the same layout: avg hops %.3f — NetSmith saves %.1f%%\n",
		mesh.AverageHops(), 100*(1-t.AverageHops()/mesh.AverageHops()))
}
