// Parsec runs the paper's full-system experiment (Figure 8) on a small
// scale: a 64-core, 4-chiplet system over mesh and NetSmith NoIs, driven
// by trace-parameterized PARSEC workloads, reporting execution-time
// speedup and packet-latency reduction relative to mesh.
package main

import (
	"fmt"
	"log"
	"time"

	"netsmith"
)

func main() {
	// Baseline: mesh NoI with expert routing.
	meshSys, err := netsmith.BuildFullSystemExpert(netsmith.Mesh(netsmith.Grid4x5), 1)
	if err != nil {
		log.Fatal(err)
	}
	// Contender: NetSmith latency-optimized medium NoI with MCLB.
	res, err := netsmith.Generate(netsmith.Options{
		Grid: netsmith.Grid4x5, Class: netsmith.Medium,
		Objective: netsmith.LatOp, Seed: 42, TimeBudget: 3 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	nsSys, err := netsmith.BuildFullSystem(res.Topology, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %12s %12s %9s %12s\n", "Benchmark", "mesh lat(ns)", "NS lat(ns)", "Speedup", "LatReduction")
	workloads := netsmith.PARSECWorkloads()
	// Light-medium-heavy subset keeps the example quick.
	for _, i := range []int{0, 5, 11} {
		w := workloads[i]
		base, err := netsmith.RunWorkload(meshSys, w, 1, true)
		if err != nil {
			log.Fatal(err)
		}
		ns, err := netsmith.RunWorkload(nsSys, w, 1, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.2f %12.2f %9.3f %11.1f%%\n",
			w.Name, base.AvgPacketNs, ns.AvgPacketNs,
			base.CPI/ns.CPI, 100*(1-ns.AvgPacketNs/base.AvgPacketNs))
	}
}
