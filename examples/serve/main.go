// Serve: run the netsmith HTTP API in-process and walk through its job
// lifecycle as a client — enqueue a scenario-matrix job, poll it to
// completion, then repeat the request and watch the content-addressed
// store answer it without simulating a single cell.
//
// Outside an example you would run the server standalone:
//
//	netsmith serve -addr :8080 -store .netsmith-store
//	curl -s -X POST localhost:8080/v1/matrix -d '{"grid":"4x4"}'
//	curl -s localhost:8080/v1/jobs/j000001
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"netsmith/internal/serve"
	"netsmith/internal/store"
)

func main() {
	// 1. A server needs a result store; every synthesis and matrix cell
	//    it computes is content-addressed there.
	dir, err := os.MkdirTemp("", "netsmith-serve-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Store: st, Workers: 2, QueueDepth: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s (store %s)\n\n", base, dir)

	// 2. Health first — load balancers poll this.
	fmt.Println("GET /healthz ->", getBody(base+"/healthz"))

	// 3. Enqueue a small matrix job: 4x4 mesh, two adversarial
	//    patterns, two rates, smoke fidelity.
	req := `{"grid":"4x4","patterns":["uniform","tornado"],"rates":[0.02,0.10],"fidelity":"smoke","energy":true,"seed":7}`
	job := post(base+"/v1/matrix", req)
	fmt.Printf("POST /v1/matrix -> job %s (%s)\n", job.ID, job.Status)

	// 4. Poll until done. Real clients back off; we spin fast.
	done := poll(base, job.ID)
	var res serve.MatrixJobResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  finished in %d ms: %d cells simulated, %d cached\n",
		done.ElapsedMS, res.Stats.Computed, res.Stats.CacheHits)
	for _, c := range res.Matrix.Curves {
		fmt.Printf("  %s/%-8s zero-load %.2f ns, saturation %.4f pkt/node/ns\n",
			c.Topology, c.Pattern, c.ZeroLoadLatencyNs, c.SaturationPerNs)
	}

	// 5. The same POST again: every cell is already in the store, so the
	//    job completes from cache — cache_hit true, nothing simulated,
	//    and the matrix payload is byte-identical.
	job2 := post(base+"/v1/matrix", req)
	done2 := poll(base, job2.ID)
	var res2 serve.MatrixJobResult
	if err := json.Unmarshal(done2.Result, &res2); err != nil {
		log.Fatal(err)
	}
	m1, _ := json.Marshal(res.Matrix)
	m2, _ := json.Marshal(res2.Matrix)
	fmt.Printf("\nrepeated POST -> job %s: cache_hit=%v in %d ms (%d simulated), payload identical: %v\n",
		job2.ID, done2.CacheHit, done2.ElapsedMS, res2.Stats.Computed, bytes.Equal(m1, m2))
}

func getBody(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	b, _ := json.Marshal(v)
	return string(b)
}

func post(url, body string) serve.JobView {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	var v serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}

func poll(base, id string) serve.JobView {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		// A non-200 means the job is gone (evicted, or the server
		// restarted) — bail out instead of spinning on an empty view.
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			log.Fatalf("job %s: HTTP %d", id, resp.StatusCode)
		}
		var v serve.JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		switch v.Status {
		case serve.StatusDone:
			return v
		case serve.StatusFailed:
			log.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
