// Serve: run the netsmith HTTP API in-process and walk through the
// unified v1 job surface as a client — enqueue a scenario-matrix job
// via POST /v1/jobs, poll it to completion, repeat the request and
// watch the content-addressed store answer it without simulating a
// single cell, then cancel a queued job with DELETE.
//
// Outside an example you would run the server standalone (and
// optionally scale it with workers sharing the store):
//
//	netsmith serve -addr :8080 -store .netsmith-store
//	netsmith serve -worker -coordinator http://localhost:8080 -store .netsmith-store
//	curl -s -X POST localhost:8080/v1/jobs -d '{"kind":"matrix","grid":"4x4"}'
//	curl -sN localhost:8080/v1/jobs/j000001/events   # SSE progress
//	curl -s localhost:8080/v1/jobs/j000001
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"netsmith/internal/serve"
	"netsmith/internal/store"
)

func main() {
	// 1. A server needs a result store; every synthesis and matrix cell
	//    it computes is content-addressed there.
	dir, err := os.MkdirTemp("", "netsmith-serve-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Store: st, Workers: 2, QueueDepth: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s (store %s)\n\n", base, dir)

	// 2. Health first — load balancers poll this.
	fmt.Println("GET /healthz ->", getBody(base+"/healthz"))

	// 3. Enqueue a small matrix job through the unified surface: one
	//    endpoint, tagged body. 4x4 mesh, two adversarial patterns, two
	//    rates, smoke fidelity.
	req := `{"kind":"matrix","grid":"4x4","patterns":["uniform","tornado"],"rates":[0.02,0.10],"fidelity":"smoke","energy":true,"seed":7}`
	job := post(base+"/v1/jobs", req)
	fmt.Printf("POST /v1/jobs -> job %s (%s)\n", job.ID, job.State)

	// 4. Poll until done. Real clients back off or stream
	//    GET /v1/jobs/{id}/events; we spin fast.
	done := poll(base, job.ID)
	var res serve.MatrixJobResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  finished in %d ms: %d cells simulated, %d cached\n",
		done.ElapsedMS, res.Stats.Computed, res.Stats.CacheHits)
	for _, c := range res.Matrix.Curves {
		fmt.Printf("  %s/%-8s zero-load %.2f ns, saturation %.4f pkt/node/ns\n",
			c.Topology, c.Pattern, c.ZeroLoadLatencyNs, c.SaturationPerNs)
	}

	// 5. The same POST again: every cell is already in the store, so the
	//    job completes from cache — cache_hit true, nothing simulated,
	//    and the matrix payload is byte-identical.
	job2 := post(base+"/v1/jobs", req)
	done2 := poll(base, job2.ID)
	var res2 serve.MatrixJobResult
	if err := json.Unmarshal(done2.Result, &res2); err != nil {
		log.Fatal(err)
	}
	m1, _ := json.Marshal(res.Matrix)
	m2, _ := json.Marshal(res2.Matrix)
	fmt.Printf("\nrepeated POST -> job %s: cache_hit=%v in %d ms (%d simulated), payload identical: %v\n",
		job2.ID, done2.CacheHit, done2.ElapsedMS, res2.Stats.Computed, bytes.Equal(m1, m2))

	// 6. Cancellation: DELETE flips a queued job straight to cancelled;
	//    a running matrix job stops within one cell per pool worker.
	job3 := post(base+"/v1/jobs", `{"kind":"matrix","grid":"8x8","fidelity":"fast","priority":-1}`)
	httpReq, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+job3.ID, nil)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		log.Fatal(err)
	}
	var cancelled serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&cancelled); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	// If the pool had already started the job, DELETE answers with the
	// still-running view and the state flips once the current cell
	// notices the dead context — wait for the terminal state.
	for !terminalState(cancelled.State) {
		time.Sleep(20 * time.Millisecond)
		if err := json.Unmarshal([]byte(getBody(base+"/v1/jobs/"+job3.ID)), &cancelled); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("DELETE /v1/jobs/%s -> %s\n", job3.ID, cancelled.State)
}

func terminalState(s string) bool {
	return s == serve.StateDone || s == serve.StateFailed || s == serve.StateCancelled
}

func getBody(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	b, _ := json.Marshal(v)
	return string(b)
}

func post(url, body string) serve.JobView {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	var v serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}

func poll(base, id string) serve.JobView {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		// A non-200 means the job is gone (evicted, or the server
		// restarted) — bail out instead of spinning on an empty view.
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			log.Fatalf("job %s: HTTP %d", id, resp.StatusCode)
		}
		var v serve.JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		switch v.State {
		case serve.StateDone:
			return v
		case serve.StateFailed, serve.StateCancelled:
			log.Fatalf("job %s %s: %s", id, v.State, v.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
