// Paretosweep reproduces the Figure 1 story on a smaller budget: it
// generates latency- and bandwidth-optimized topologies for every
// link-length class and prints where each lands on the latency /
// saturation-throughput plane next to the expert designs — the
// lower-right corner (low latency, high throughput) wins.
package main

import (
	"fmt"
	"log"
	"time"

	"netsmith"
)

func main() {
	fmt.Printf("%-22s %-7s %12s %18s\n", "Topology", "Class", "Latency(ns)", "SatTput(pkt/n/ns)")

	show := func(t *netsmith.Topology, expertRouting bool) {
		var net *netsmith.Network
		var err error
		if expertRouting {
			net, err = netsmith.PrepareNDBT(t)
		} else {
			net, err = netsmith.Prepare(t)
		}
		if err != nil {
			log.Fatal(err)
		}
		sweep, err := netsmith.SweepUniform(net, nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-7s %12.2f %18.3f\n",
			t.Name, t.Class, sweep.ZeroLoadLatencyNs, sweep.SaturationPerNs)
	}

	// Expert designs.
	for _, name := range []string{"Kite-Small", "Folded Torus", "Kite-Medium", "Butter Donut", "Double Butterfly", "Kite-Large"} {
		t, err := netsmith.Baseline(name, netsmith.Grid4x5)
		if err != nil {
			log.Fatal(err)
		}
		show(t, true)
	}
	// NetSmith per class, both objectives.
	for _, class := range []netsmith.Class{netsmith.Small, netsmith.Medium, netsmith.Large} {
		for _, obj := range []netsmith.Objective{netsmith.LatOp, netsmith.SCOp} {
			res, err := netsmith.Generate(netsmith.Options{
				Grid: netsmith.Grid4x5, Class: class, Objective: obj,
				Seed: 42, TimeBudget: 2 * time.Second,
			})
			if err != nil {
				log.Fatal(err)
			}
			show(res.Topology, false)
		}
	}
}
