// Paretosweep traces the latency / throughput / energy trade-off the
// paper motivates: a ParetoSweep synthesizes one topology per energy
// weight (fixed iteration budgets, so every run of this example prints
// identical numbers), measures each under uniform traffic, prunes
// dominated points and reports the surviving frontier with fleet-level
// energy accounting. Expert designs are printed first for context —
// the frontier's low-latency end should land near the best of them.
package main

import (
	"fmt"
	"log"

	"netsmith"
)

func main() {
	fmt.Printf("%-22s %12s %18s\n", "Expert topology", "Latency(ns)", "SatTput(pkt/n/ns)")
	for _, name := range []string{"Kite-Medium", "Butter Donut", "Double Butterfly"} {
		t, err := netsmith.Baseline(name, netsmith.Grid4x5)
		if err != nil {
			log.Fatal(err)
		}
		net, err := netsmith.PrepareNDBT(t)
		if err != nil {
			log.Fatal(err)
		}
		sweep, err := netsmith.SweepUniform(net, nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.2f %18.3f\n", t.Name, sweep.ZeroLoadLatencyNs, sweep.SaturationPerNs)
	}
	fmt.Println()

	// A deterministic sweep: fixed Iterations/Restarts (never
	// TimeBudget — wall-clock budgets make results machine-dependent),
	// one synthesis per energy weight. Attach a store via
	// ParetoConfig.Store to make re-runs instant.
	fr, err := netsmith.ParetoSweep(netsmith.ParetoConfig{
		Base: netsmith.Options{
			Grid: netsmith.Grid4x5, Class: netsmith.Medium, Objective: netsmith.LatOp,
			Seed: 42, Iterations: 3000, Restarts: 2,
		}.SynthConfig(),
		EnergyWeights: []float64{0, 1, 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %6s %12s %18s %10s %10s\n",
		"Energy w", "Links", "Latency(ns)", "SatTput(pkt/n/ns)", "Power(mW)", "pJ/flit")
	for _, p := range fr.Points {
		fmt.Printf("%-10g %6d %12.2f %18.3f %10.2f %10.2f\n",
			p.EnergyWeight, p.Links, p.LatencyNs, p.SaturationPerNs, p.AvgPowerMW, p.EnergyPerFlitPJ)
	}
	fe := fr.Energy
	fmt.Printf("\nfrontier: %d of %d swept points survive (%d dominated)\n",
		len(fr.Points), fr.Swept, fr.Pruned)
	fmt.Printf("fleet: %.2f mW aggregate (%.1f%% idle, %.1f%% active), %.2f pJ/flit mean\n",
		fe.AggregatePowerMW, 100*fe.IdleShare, 100*fe.ActiveShare, fe.EnergyPerFlitPJ)
}
