// Scenarios runs the full workload registry — the paper's three
// patterns plus the classic adversarial ones (transpose, bit-complement,
// bit-reverse, tornado), a configurable hotspot and bursty MMPP
// modulation — over a machine-discovered topology and the mesh baseline,
// and reports where synthesis pays off and where it does not.
//
// The same matrix is available from the command line:
//
//	netbench -matrix -grid 4x5 -class medium -csv out/
package main

import (
	"fmt"
	"log"
	"time"

	"netsmith"
)

func main() {
	// 1. Discover a latency-optimized 4x5 topology with medium links and
	//    build the expert mesh it competes against.
	res, err := netsmith.Generate(netsmith.Options{
		Grid:       netsmith.Grid4x5,
		Class:      netsmith.Medium,
		Objective:  netsmith.LatOp,
		Seed:       42,
		TimeBudget: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	ns, err := netsmith.Prepare(res.Topology) // MCLB routing + VCs
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := netsmith.PrepareNDBT(netsmith.Mesh(netsmith.Grid4x5))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Assemble the scenario matrix: every parameter-free registry
	//    pattern, plus a sharpened hotspot to show parameterization
	//    (80% of traffic to the two corner routers).
	var patterns []netsmith.PatternFactory
	for _, name := range netsmith.PatternNames() {
		if name == "trace" { // needs a recorded trace file
			continue
		}
		patterns = append(patterns, netsmith.PatternFactoryFor(name, netsmith.Grid4x5, nil))
	}
	patterns = append(patterns, netsmith.PatternFactory{
		Name: "hotspot80",
		New: func() (netsmith.Pattern, error) {
			return netsmith.BuildPattern("hotspot", netsmith.Grid4x5,
				map[string]string{"weight": "0.8", "hot": "0+19"})
		},
	})

	// 3. Run {2 topologies x 10 patterns x 3 rates}: deterministic at
	//    any GOMAXPROCS, each cell seeded from its matrix position.
	//    CollectEnergy turns on the engine's activity counters, so every
	//    cell also reports measured power and energy per flit.
	matrix, err := netsmith.RunMatrix(netsmith.MatrixConfig{
		Setups:   []*netsmith.Network{mesh, ns},
		Patterns: patterns,
		Rates:    []float64{0.02, 0.08, 0.14},
		Base: netsmith.SimConfig{ // fast-fidelity cycle budgets
			WarmupCycles: 1500, MeasureCycles: 4000, DrainCycles: 6000,
			CollectEnergy: true,
		},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare saturation throughput and measured energy pattern by
	//    pattern (energy at the lowest offered rate: the zero-load cost
	//    of running the fabric).
	fmt.Printf("%-12s %10s %10s %8s %12s %12s\n",
		"pattern", "mesh sat", "NS sat", "NS/mesh", "mesh pJ/flit", "NS pJ/flit")
	for _, p := range patterns {
		m := matrix.Curve(mesh.Topo.Name, p.Name)
		n := matrix.Curve(ns.Topo.Name, p.Name)
		ratio := 0.0
		if m.SaturationPerNs > 0 {
			ratio = n.SaturationPerNs / m.SaturationPerNs
		}
		fmt.Printf("%-12s %10.4f %10.4f %7.2fx %12.2f %12.2f\n",
			p.Name, m.SaturationPerNs, n.SaturationPerNs, ratio,
			m.Points[0].EnergyPerFlitPJ, n.Points[0].EnergyPerFlitPJ)
	}
	fmt.Println("\n(sat = accepted packets/node/ns before latency exceeds 5x zero-load;")
	fmt.Println(" permutation patterns concentrate flows, so they stress the discovered")
	fmt.Println(" long links far harder than uniform traffic does; pJ/flit is measured")
	fmt.Println(" dynamic energy per delivered flit — fewer hops means fewer buffer and")
	fmt.Println(" link traversals, which is where synthesized topologies save energy)")
}
