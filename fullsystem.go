package netsmith

import (
	"netsmith/internal/fullsys"
)

// FullSystem is the 64-core, 4-chiplet configuration of the paper's
// Table IV built around a 20-router (4x5) NoI topology: 4x4 mesh NoCs at
// 3.8 GHz per chiplet, clock-domain crossings to the NoI, and memory
// controllers on the NoI edge columns.
type FullSystem = fullsys.System

// Workload is a trace-parameterized PARSEC benchmark.
type Workload = fullsys.Benchmark

// WorkloadResult is one benchmark x topology measurement.
type WorkloadResult = fullsys.WorkloadResult

// PARSECWorkloads returns the 12 modelled PARSEC benchmarks (vips
// excluded, as in the paper), ordered by L2 miss intensity.
func PARSECWorkloads() []Workload { return fullsys.Benchmarks() }

// BuildFullSystem assembles the full system around a 4x5 NoI with
// NetSmith's MCLB routing.
func BuildFullSystem(noi *Topology, seed int64) (*FullSystem, error) {
	return fullsys.Build(noi, seed)
}

// BuildFullSystemExpert is BuildFullSystem with the expert-baseline
// heuristic routing (NDBT on the NoI segment).
func BuildFullSystemExpert(noi *Topology, seed int64) (*FullSystem, error) {
	return fullsys.BuildExpert(noi, seed)
}

// RunWorkload simulates a PARSEC workload on a full system and applies
// the execution-time model; fast trades fidelity for runtime.
func RunWorkload(sys *FullSystem, w Workload, seed int64, fast bool) (*WorkloadResult, error) {
	return sys.RunWorkload(w, fullsys.DefaultExecModel(), seed, fast)
}
