package netsmith

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"netsmith/internal/serve"
	"netsmith/internal/store"
)

// Job and result shapes shared by the client and the HTTP API: a
// SynthJob/MatrixJob is exactly the wire body of a POST /v1/jobs
// request (minus the "kind" tag, which the Client adds), so the same
// value runs locally or remotely without translation.
type (
	// SynthJob describes one topology-synthesis job; zero values select
	// the paper defaults. See Options for the mapping from the
	// lower-level surface.
	SynthJob = serve.SynthRequest
	// SynthJobResult is a synthesis job's payload.
	SynthJobResult = serve.SynthResult
	// MatrixJob describes one scenario-matrix job; it mirrors the
	// netbench -matrix flags.
	MatrixJob = serve.MatrixRequest
	// MatrixJobOutcome is a matrix job's payload: the matrix plus the
	// simulated/cached cell split.
	MatrixJobOutcome = serve.MatrixJobResult
	// ParetoJob describes one Pareto-frontier sweep (POST /v1/pareto):
	// synthesize a topology per weight-grid point, measure each, prune
	// dominated points, report fleet-level energy accounting.
	ParetoJob = serve.ParetoRequest
	// ParetoJobOutcome is a pareto job's payload: the frontier plus the
	// run's synthesis/cell cache accounting.
	ParetoJobOutcome = serve.ParetoJobResult
	// JobView is the canonical job envelope the HTTP API reports.
	JobView = serve.JobView
)

// Client executes synthesis and scenario-matrix jobs through a single
// call shape, either in-process ("local mode", the default) or against
// a `netsmith serve` coordinator over HTTP ("remote mode", WithServer).
// Both modes run the exact same validation and execution code — the
// serve package's request path — so a job moved from a laptop to a
// cluster returns byte-identical results.
//
// The zero-config client runs locally without a cache:
//
//	c, _ := netsmith.NewClient()
//	out, _, err := c.Matrix(ctx, netsmith.MatrixJob{Grid: "4x4"})
//
// Add WithStoreDir for content-addressed caching, or WithServer to
// dispatch to a cluster:
//
//	c, _ := netsmith.NewClient(netsmith.WithServer("http://coordinator:8080"))
type Client struct {
	server   string // "" = local
	st       *store.Store
	httpc    *http.Client
	poll     time.Duration
	priority int
	progress func(done, total int)
}

// ClientOption configures NewClient.
type ClientOption func(*Client) error

// WithServer switches the client to remote mode: jobs are POSTed to
// the coordinator at baseURL (e.g. "http://host:8080"), polled to
// completion, and cancelled server-side when the caller's context
// dies.
func WithServer(baseURL string) ClientOption {
	return func(c *Client) error {
		if baseURL == "" {
			return fmt.Errorf("netsmith: WithServer needs a base URL")
		}
		c.server = strings.TrimSuffix(baseURL, "/")
		return nil
	}
}

// WithStore attaches an open result store for local mode (remote mode
// uses the server's store).
func WithStore(st *Store) ClientOption {
	return func(c *Client) error { c.st = st; return nil }
}

// WithStoreDir opens (creating if needed) a result store at dir and
// attaches it; shorthand for OpenStore + WithStore.
func WithStoreDir(dir string) ClientOption {
	return func(c *Client) error {
		st, err := store.Open(dir)
		if err != nil {
			return err
		}
		c.st = st
		return nil
	}
}

// WithPriority sets the job priority used in remote mode (higher runs
// first; negative-priority jobs are shed first under load). Local mode
// has no queue, so priority is a no-op there.
func WithPriority(p int) ClientOption {
	return func(c *Client) error { c.priority = p; return nil }
}

// WithPollInterval sets the remote-mode completion poll cadence
// (default 150ms).
func WithPollInterval(d time.Duration) ClientOption {
	return func(c *Client) error {
		if d <= 0 {
			return fmt.Errorf("netsmith: poll interval must be positive")
		}
		c.poll = d
		return nil
	}
}

// WithHTTPClient overrides the remote-mode HTTP client (default: 30s
// timeout per request).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) error { c.httpc = h; return nil }
}

// WithProgress registers a matrix progress callback: done of total
// cells resolved. Local mode reports per cell; remote mode reports at
// the poll cadence from the job envelope.
func WithProgress(fn func(done, total int)) ClientOption {
	return func(c *Client) error { c.progress = fn; return nil }
}

// NewClient builds a client; with no options it executes locally,
// uncached.
func NewClient(opts ...ClientOption) (*Client, error) {
	c := &Client{
		httpc: &http.Client{Timeout: 30 * time.Second},
		poll:  150 * time.Millisecond,
	}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Synth runs one synthesis job to completion. The bool reports a cache
// hit (the entire result came from the store).
func (c *Client) Synth(ctx context.Context, job SynthJob) (*SynthJobResult, bool, error) {
	if c.server == "" {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		return serve.ExecuteSynth(c.st, job)
	}
	var out SynthJobResult
	hit, err := c.remote(ctx, "synth", job, &out)
	if err != nil {
		return nil, false, err
	}
	return &out, hit, nil
}

// Matrix runs one scenario-matrix job to completion. In remote mode a
// job with Shards > 1 (or a coordinator-side default) fans out across
// the cluster's workers; either way the result is byte-identical to a
// local run. Cancellation is cell-granular: when ctx dies, a local run
// stops within one cell per pool worker, and a remote run is cancelled
// server-side (DELETE /v1/jobs/{id}).
func (c *Client) Matrix(ctx context.Context, job MatrixJob) (*MatrixJobOutcome, bool, error) {
	if c.server == "" {
		out, hit, err := serve.ExecuteMatrix(ctx, c.st, job, monotone(c.progress))
		if err != nil {
			return nil, false, err
		}
		return out, hit, nil
	}
	var out MatrixJobOutcome
	hit, err := c.remote(ctx, "matrix", job, &out)
	if err != nil {
		return nil, false, err
	}
	return &out, hit, nil
}

// Pareto runs one Pareto-frontier sweep to completion. The bool
// reports that the sweep did no new work (the frontier itself — or
// every synthesis and matrix cell under it — came from the store).
// Frontier bytes are identical between local and remote mode, warm and
// cold store. Progress is reported in sweep units: one per synthesis
// point plus an equal measurement share.
func (c *Client) Pareto(ctx context.Context, job ParetoJob) (*ParetoJobOutcome, bool, error) {
	if c.server == "" {
		out, hit, err := serve.ExecutePareto(ctx, c.st, job, monotone(c.progress))
		if err != nil {
			return nil, false, err
		}
		return out, hit, nil
	}
	var out ParetoJobOutcome
	hit, err := c.remote(ctx, "pareto", job, &out)
	if err != nil {
		return nil, false, err
	}
	return &out, hit, nil
}

// monotone adapts a progress callback so done never regresses —
// RunMatrix invokes callbacks concurrently from its pool, so raw done
// values may arrive out of order. Remote mode needs no adapter: the
// server's job envelope already reports monotone progress.
func monotone(fn func(done, total int)) func(done, total int) {
	if fn == nil {
		return nil
	}
	var mu sync.Mutex
	best := 0
	return func(done, total int) {
		mu.Lock()
		if done < best {
			done = best
		} else {
			best = done
		}
		mu.Unlock()
		fn(done, total)
	}
}

// remote POSTs the tagged job, polls it to a terminal state, and
// decodes the result payload into out.
func (c *Client) remote(ctx context.Context, kind string, job any, out any) (cacheHit bool, err error) {
	// Fold kind and priority into the request body.
	raw, err := json.Marshal(job)
	if err != nil {
		return false, err
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		return false, err
	}
	fields["kind"], _ = json.Marshal(kind)
	if c.priority != 0 {
		fields["priority"], _ = json.Marshal(c.priority)
	}
	body, err := json.Marshal(fields)
	if err != nil {
		return false, err
	}

	var accepted JobView
	if err := c.call(ctx, http.MethodPost, c.server+"/v1/jobs", body, http.StatusAccepted, &accepted); err != nil {
		return false, err
	}
	id := accepted.ID
	t := time.NewTicker(c.poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			// Best-effort server-side cancellation frees the remote
			// worker slot (and revokes cluster shard leases).
			cancelCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = c.call(cancelCtx, http.MethodDelete, c.server+"/v1/jobs/"+id, nil, http.StatusOK, nil)
			cancel()
			return false, ctx.Err()
		case <-t.C:
		}
		var v JobView
		if err := c.call(ctx, http.MethodGet, c.server+"/v1/jobs/"+id, nil, http.StatusOK, &v); err != nil {
			return false, err
		}
		if c.progress != nil && v.Progress != nil {
			c.progress(v.Progress.Done, v.Progress.Total)
		}
		switch v.State {
		case serve.StateDone:
			return v.CacheHit, json.Unmarshal(v.Result, out)
		case serve.StateFailed, serve.StateCancelled:
			return false, fmt.Errorf("netsmith: job %s %s: %s", id, v.State, v.Error)
		}
	}
}

// call performs one HTTP exchange, decoding the API's error envelope
// into a useful error on unexpected statuses.
func (c *Client) call(ctx context.Context, method, url string, body []byte, wantStatus int, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		var env serve.ErrorEnvelope
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			return fmt.Errorf("netsmith: %s %s: %s (%s)", method, url, env.Error.Message, env.Error.Code)
		}
		return fmt.Errorf("netsmith: %s %s: status %d", method, url, resp.StatusCode)
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}
